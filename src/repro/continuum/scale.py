"""Continuum-scale scenario: a sharded city fabric of vectorized fleets.

This is the 10k-device / 8-zone proof scenario behind
``examples/continuum_scale.py`` and the ``sim.sharded.10k`` benchmark,
and — via :meth:`ScaleConfig.metro_100k` — the 100k-device / 16-zone
flagship the multiprocess backend targets. Each zone hosts one
:class:`~repro.continuum.fleet.DeviceFleet` (vectorized churn +
telemetry), zone 0 aggregates every zone's fleet telemetry across shard
boundaries, and one zone suffers a correlated outage mid-run — so a
single scenario exercises the epoch relay, the chaos accounting and the
merged-trace determinism contract at scale.

``run_scale_scenario(config, n_shards=1)`` is the single-shard twin of
``run_scale_scenario(config)``; their merged traces must be
byte-identical (``ScaleResult.digest``) and their scorecards equal —
tests and the CI ``scale-smoke`` job pin both. ``run_scale_scenario(
config, workers=N)`` runs the same scenario on the multiprocess
:class:`~repro.runtime.parallel.ParallelShardedContext`; the digest
contract extends across the process boundary (parallel == sequential ==
single-shard, byte for byte).

The zone build steps live in module-level functions
(:func:`build_scale_zone` / :func:`finalize_scale_zone`) because worker
processes re-run them per zone — and the sequential path calls the very
same functions in zone-rank order, so both backends construct zones
through one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.continuum.fleet import DeviceFleet
from repro.runtime.parallel import ParallelShardedContext
from repro.runtime.shard import ShardedContext


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the scale scenario; defaults are the flagship 10k run."""

    devices: int = 10_000
    zones: int = 8
    shards: int = 8
    #: Worker processes for ``run_scale_scenario``: 0 runs the
    #: sequential in-process backend, >= 1 the multiprocess backend.
    workers: int = 0
    horizon_s: float = 1000.0
    seed: int = 0
    telemetry_period_s: float = 10.0
    #: Publish fleet telemetry every Nth step (draws still happen every
    #: step — the RNG stream position is part of the replay contract).
    telemetry_every: int = 1
    #: Minimum cross-zone link latency — the epoch lookahead. A metro
    #: backbone hop between zone aggregation points.
    link_latency_s: float = 0.5
    fail_rate_per_s: float = 2e-4
    repair_rate_per_s: float = 5e-2
    #: Zone index to knock dark mid-run (-1 disables the outage).
    outage_zone: int = 1
    outage_at_s: float = 300.0
    outage_duration_s: float = 60.0
    #: Sample shard.epoch.barrier records every N epochs so barrier
    #: bookkeeping does not drown the trace at fine lookaheads.
    barrier_record_every: int = 50
    trace_capacity: int = 65536
    #: Enable the opt-in :class:`~repro.obs.profiler.ShardProfiler`
    #: (per-epoch advance/wait wall times — nondeterministic, never part
    #: of the digest; see ``repro-obs shards``).
    profile: bool = False

    def zone_names(self) -> list[str]:
        return [f"zone-{i:02d}" for i in range(self.zones)]

    @classmethod
    def metro_100k(cls, **overrides: Any) -> "ScaleConfig":
        """The 100k-device / 16-zone flagship: a metro region of 16
        aggregation zones over a 10 ms backbone. The fat lookahead
        gives 100 epochs over the kilosecond horizon — enough barriers
        to exercise the relay, few enough that coordination cost stays
        a rounding error next to 800k vectorized fleet steps."""
        config = cls(devices=100_000, zones=16, shards=16, workers=4,
                     horizon_s=1000.0, telemetry_period_s=2.0,
                     link_latency_s=10.0, barrier_record_every=10)
        return replace(config, **overrides) if overrides else config


def build_scale_zone(ctx, zone: str, config: ScaleConfig) -> dict:
    """Construct one zone: its fleet, its outage, and — on zone 0 —
    the cross-zone telemetry aggregator. Called per zone in rank order
    by both backends (inside the worker process for the parallel one).
    """
    names = config.zone_names()
    index = names.index(zone)
    state: dict = {}
    if index == 0:
        # Zone 0 aggregates fleet telemetry from every zone; samples
        # from other zones cross shard boundaries through the epoch
        # relay.
        aggregate: dict = {"samples": 0, "zones": {}}

        def on_telemetry(topic: str, payload: dict) -> None:
            aggregate["samples"] += 1
            aggregate["zones"][payload["zone"]] = payload["up"]

        ctx.subscribe("shard.fleet.telemetry.*", on_telemetry)
        state["aggregate"] = aggregate

        # Zone 0 also watches chaos events continuum-wide. The handler
        # opens a span, so a fault injected in another zone produces a
        # cross-zone causal tree: ``continuum.fault.inject`` (origin
        # zone) → ``shard.relay.deliver`` → ``scale.outage.watch``
        # (zone 0) — one trace id across zones and worker processes.
        def on_chaos(topic: str, payload: dict) -> None:
            with ctx.tracer.start_span("scale.outage.watch",
                                       layer="continuum", zone=zone,
                                       origin=payload["zone"]):
                aggregate["outages"] = aggregate.get("outages", 0) + 1

        ctx.subscribe("chaos.zone.*", on_chaos)
    base, rem = divmod(config.devices, config.zones)
    fleet = DeviceFleet(
        zone, base + (1 if index < rem else 0), ctx=ctx,
        fail_rate_per_s=config.fail_rate_per_s,
        repair_rate_per_s=config.repair_rate_per_s)
    if index == config.outage_zone:
        fleet.schedule_outage(config.outage_at_s, config.outage_duration_s)
    fleet.start(config.telemetry_period_s, every=config.telemetry_every)
    state["fleet"] = fleet
    return state


def finalize_scale_zone(state: dict, zone: str,
                        config: ScaleConfig) -> dict:
    """Reduce one zone's build state to a picklable result."""
    result = {"scorecard": state["fleet"].scorecard()}
    if "aggregate" in state:
        result["aggregate"] = state["aggregate"]
    return result


@dataclass
class ScaleResult:
    """A finished scale run: the (sequential or parallel) sharded
    context, the per-zone scorecards and the zone-0 aggregate."""

    sharded: Any
    fleets: list[DeviceFleet]
    aggregate: dict
    zone_scorecards: list[dict] | None = None

    def digest(self) -> str:
        """SHA-256 of the merged trace (shard- and worker-count-
        invariant)."""
        return self.sharded.digest()

    def scorecard(self) -> dict:
        """Deterministic run summary: per-zone resilience + aggregation.

        Equal — key for key, float for float — between a sharded run,
        its single-shard twin and a multiprocess run.
        """
        zones = self.zone_scorecards if self.zone_scorecards is not None \
            else [fleet.scorecard() for fleet in self.fleets]
        return {
            "devices": sum(z["devices"] for z in zones),
            "epochs": self.sharded.epoch,
            "zones": zones,
            "aggregator": self.aggregate,
        }


def run_scale_scenario(config: ScaleConfig = ScaleConfig(),
                       n_shards: int | None = None,
                       workers: int | None = None) -> ScaleResult:
    """Build and run the scenario.

    *n_shards* overrides ``config.shards`` (pass 1 for the determinism
    twin); *workers* overrides ``config.workers`` — 0 for the
    sequential in-process backend, >= 1 for that many worker processes.
    """
    shards = config.shards if n_shards is None else n_shards
    n_workers = config.workers if workers is None else workers
    names = config.zone_names()

    if n_workers >= 1:
        parallel = ParallelShardedContext(
            seed=config.seed, zones=names, workers=n_workers,
            link_latency_s=config.link_latency_s,
            barrier_record_every=config.barrier_record_every,
            trace_capacity=config.trace_capacity,
            zone_builder=build_scale_zone, zone_args=config,
            zone_finalizer=finalize_scale_zone, profile=config.profile)
        try:
            parallel.run(until=config.horizon_s)
            by_zone = parallel.finalize()
        finally:
            parallel.close()
        return ScaleResult(
            sharded=parallel, fleets=[],
            aggregate=by_zone[names[0]]["aggregate"],
            zone_scorecards=[by_zone[name]["scorecard"]
                             for name in names])

    sharded = ShardedContext(
        seed=config.seed, zones=names, n_shards=shards,
        link_latency_s=config.link_latency_s,
        barrier_record_every=config.barrier_record_every,
        trace_capacity=config.trace_capacity, profile=config.profile)
    states = [build_scale_zone(sharded.zone(name), name, config)
              for name in names]
    sharded.run(until=config.horizon_s)
    return ScaleResult(
        sharded=sharded,
        fleets=[state["fleet"] for state in states],
        aggregate=states[0]["aggregate"])
