"""Continuum-scale scenario: a sharded city fabric of vectorized fleets.

This is the 10k-device / 8-zone proof scenario behind
``examples/continuum_scale.py`` and the ``sim.sharded.10k`` benchmark.
Each zone hosts one :class:`~repro.continuum.fleet.DeviceFleet`
(vectorized churn + telemetry), zone 0 aggregates every zone's fleet
telemetry across shard boundaries, and one zone suffers a correlated
outage mid-run — so a single scenario exercises the epoch relay, the
chaos accounting and the merged-trace determinism contract at scale.

``run_scale_scenario(config, n_shards=1)`` is the single-shard twin of
``run_scale_scenario(config)``; their merged traces must be
byte-identical (``ScaleResult.digest``) and their scorecards equal —
tests and the CI ``scale-smoke`` job pin both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.continuum.fleet import DeviceFleet
from repro.runtime.shard import ShardedContext


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the scale scenario; defaults are the flagship 10k run."""

    devices: int = 10_000
    zones: int = 8
    shards: int = 8
    horizon_s: float = 1000.0
    seed: int = 0
    telemetry_period_s: float = 10.0
    #: Minimum cross-zone link latency — the epoch lookahead. A metro
    #: backbone hop between zone aggregation points.
    link_latency_s: float = 0.5
    fail_rate_per_s: float = 2e-4
    repair_rate_per_s: float = 5e-2
    #: Zone index to knock dark mid-run (-1 disables the outage).
    outage_zone: int = 1
    outage_at_s: float = 300.0
    outage_duration_s: float = 60.0
    #: Sample shard.epoch.barrier records every N epochs so barrier
    #: bookkeeping does not drown the trace at fine lookaheads.
    barrier_record_every: int = 50
    trace_capacity: int = 65536

    def zone_names(self) -> list[str]:
        return [f"zone-{i:02d}" for i in range(self.zones)]


@dataclass
class ScaleResult:
    """A finished scale run: the sharded context, fleets and aggregate."""

    sharded: ShardedContext
    fleets: list[DeviceFleet]
    aggregate: dict

    def digest(self) -> str:
        """SHA-256 of the merged trace (shard-count-invariant)."""
        return self.sharded.digest()

    def scorecard(self) -> dict:
        """Deterministic run summary: per-zone resilience + aggregation.

        Equal — key for key, float for float — between a sharded run
        and its single-shard twin.
        """
        return {
            "devices": sum(f.size for f in self.fleets),
            "epochs": self.sharded.epoch,
            "zones": [fleet.scorecard() for fleet in self.fleets],
            "aggregator": self.aggregate,
        }


def run_scale_scenario(config: ScaleConfig = ScaleConfig(),
                       n_shards: int | None = None) -> ScaleResult:
    """Build and run the scenario; *n_shards* overrides ``config.shards``
    (pass 1 for the determinism twin)."""
    shards = config.shards if n_shards is None else n_shards
    names = config.zone_names()
    sharded = ShardedContext(
        seed=config.seed, zones=names, n_shards=shards,
        link_latency_s=config.link_latency_s,
        barrier_record_every=config.barrier_record_every,
        trace_capacity=config.trace_capacity)

    # Zone 0 aggregates fleet telemetry from every zone; samples from
    # other zones cross shard boundaries through the epoch relay.
    aggregate: dict = {"samples": 0, "zones": {}}

    def on_telemetry(topic: str, payload: dict) -> None:
        aggregate["samples"] += 1
        aggregate["zones"][payload["zone"]] = payload["up"]

    ctx = sharded.zone(names[0])
    ctx.subscribe("shard.fleet.telemetry.*", on_telemetry)

    fleets = []
    base, rem = divmod(config.devices, config.zones)
    for i, name in enumerate(names):
        size = base + (1 if i < rem else 0)
        fleet = DeviceFleet(
            name, size, ctx=sharded.zone(name),
            fail_rate_per_s=config.fail_rate_per_s,
            repair_rate_per_s=config.repair_rate_per_s)
        if i == config.outage_zone:
            fleet.schedule_outage(config.outage_at_s,
                                  config.outage_duration_s)
        fleet.start(config.telemetry_period_s)
        fleets.append(fleet)

    sharded.run(until=config.horizon_s)
    return ScaleResult(sharded=sharded, fleets=fleets, aggregate=aggregate)
