"""Vectorized device fleets: array-of-struct batch stepping at 10k+ scale.

The per-object :class:`~repro.continuum.devices.Device` model costs
microseconds of Python per device per event — fine for tens of devices,
prohibitive for a city. A :class:`DeviceFleet` holds one *zone's* device
population as numpy arrays (up/down state, per-device energy, downtime)
and advances the whole population in one DES event per telemetry period:
a single vectorized churn draw, elementwise state transitions, one
aggregate telemetry publish. Per-device cost amortizes to nanoseconds.

RNG contract: a step draws two batches from the fleet's named stream —
``random(n)`` for churn, then ``random(n)`` for load — and numpy
generators fill a batch in index order, so device *i* consumes exactly
the draw a scalar per-device loop would give it.
:meth:`DeviceFleet.step_reference` is that scalar loop; the equivalence
test pins vectorized == reference, state for state and joule for joule.

Fleets are zone-determinism-safe by construction: every draw comes from
the owning context's seed subtree and every publish goes to the owning
context's bus, so a fleet behaves identically whether its zone shares a
simulator with seven others or runs alone (see
:mod:`repro.runtime.shard`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.continuum.devices import SPEC_CATALOGUE, DeviceKind
from repro.runtime import RuntimeContext

#: Per-zone aggregate telemetry, one publish per fleet step.
FLEET_TELEMETRY_TOPIC = "shard.fleet.telemetry"

_DEFAULT_KINDS = (DeviceKind.EDGE_MULTICORE, DeviceKind.HMPSOC_FPGA,
                  DeviceKind.RISCV_CGRA)


class DeviceFleet:
    """One zone's device population, stepped as arrays.

    Devices cycle over *kinds* (calibrated specs from
    ``SPEC_CATALOGUE``); each step applies exponential churn — up
    devices fail with rate *fail_rate_per_s*, down devices repair with
    rate *repair_per_s* — draws a utilization sample per live device and
    integrates energy from the spec's idle/busy power envelope.
    """

    def __init__(self, zone: str, size: int, *,
                 ctx: RuntimeContext | None = None,
                 kinds: Sequence[DeviceKind] = _DEFAULT_KINDS,
                 fail_rate_per_s: float = 2e-4,
                 repair_rate_per_s: float = 5e-2):
        if size < 1:
            raise ConfigurationError("fleet size must be >= 1")
        if fail_rate_per_s < 0 or repair_rate_per_s < 0:
            raise ConfigurationError("churn rates must be >= 0")
        self.ctx = RuntimeContext.adopt(ctx)
        self.zone = zone
        self.size = size
        self.fail_rate_per_s = fail_rate_per_s
        self.repair_rate_per_s = repair_rate_per_s
        specs = [SPEC_CATALOGUE[k] for k in kinds]
        self._idle_w = np.array(
            [specs[i % len(specs)].idle_power_w for i in range(size)])
        self._busy_w = np.array(
            [specs[i % len(specs)].busy_power_w for i in range(size)])
        self._rng = self.ctx.numpy_rng(f"fleet.{zone}")
        # Fleet health counters, labelled by zone so the sharded
        # backends' aggregated registry keeps per-zone breakdowns. The
        # values are RNG-driven and therefore deterministic — safe for
        # the byte-identical cross-backend metrics comparison.
        metrics = self.ctx.metrics
        self._c_steps = metrics.counter(
            "continuum.fleet.steps", "fleet batch steps", label_key="zone")
        self._c_failures = metrics.counter(
            "continuum.fleet.failures", "device churn failures",
            label_key="zone")
        self._c_repairs = metrics.counter(
            "continuum.fleet.repairs", "device churn repairs",
            label_key="zone")
        self._c_forced = metrics.counter(
            "continuum.fleet.forced_failures",
            "devices forced down by zone outages", label_key="zone")
        self.up = np.ones(size, dtype=bool)
        self.energy_j = np.zeros(size)
        self.downtime_s = np.zeros(size)
        self.utilization = np.zeros(size)
        self.failures = 0
        self.repairs = 0
        self.forced_failures = 0
        self.steps = 0
        self.elapsed_s = 0.0
        self.forced_outage = False

    def _bump(self, counter, n: int) -> None:
        """Add *n* to a zone-labelled counter (zero deltas stay silent
        so idle zones don't fabricate label entries)."""
        if n:
            counter.value += n
            labels = counter.labels
            labels[self.zone] = labels.get(self.zone, 0) + n

    # -- stepping ----------------------------------------------------------

    def step(self, dt_s: float, *, publish: bool = True) -> None:
        """Advance every device by *dt_s* with one vectorized draw pair."""
        u_churn = self._rng.random(self.size)
        u_load = self._rng.random(self.size)
        self._apply(dt_s, u_churn, u_load, publish)

    def step_reference(self, dt_s: float, *, publish: bool = True) -> None:
        """Scalar twin of :meth:`step`: per-device draws in index order.

        Exists so tests can pin the vectorized path to the per-device
        semantics — same stream, same draw order, same transitions.
        """
        u_churn = np.array([self._rng.random() for _ in range(self.size)])
        u_load = np.array([self._rng.random() for _ in range(self.size)])
        self._apply(dt_s, u_churn, u_load, publish)

    def _apply(self, dt_s: float, u_churn: np.ndarray,
               u_load: np.ndarray, publish: bool = True) -> None:
        p_fail = -math.expm1(-self.fail_rate_per_s * dt_s)
        p_repair = -math.expm1(-self.repair_rate_per_s * dt_s)
        was_up = self.up
        if self.forced_outage:
            # The whole zone is dark: draws are still consumed (the
            # stream position is part of the replay contract) but no
            # device runs or repairs until the outage lifts.
            forced = int(was_up.sum())
            self.forced_failures += forced
            self._bump(self._c_forced, forced)
            up = np.zeros(self.size, dtype=bool)
        else:
            fails = was_up & (u_churn < p_fail)
            repairs = ~was_up & (u_churn < p_repair)
            n_fail = int(fails.sum())
            n_repair = int(repairs.sum())
            self.failures += n_fail
            self.repairs += n_repair
            self._bump(self._c_failures, n_fail)
            self._bump(self._c_repairs, n_repair)
            up = (was_up & ~fails) | repairs
        self._bump(self._c_steps, 1)
        self.up = up
        self.utilization = np.where(up, u_load, 0.0)
        self.energy_j += dt_s * np.where(
            up, self._idle_w + self.utilization
            * (self._busy_w - self._idle_w), 0.0)
        self.downtime_s += dt_s * ~up
        self.steps += 1
        self.elapsed_s += dt_s
        if not publish:
            # Batched telemetry: churn accounting and the RNG stream
            # advanced as usual, only the publish is skipped.
            return
        self.ctx.publish(f"shard.fleet.telemetry.{self.zone}", {
            "zone": self.zone,
            "time_s": self.ctx.now,
            "up": int(up.sum()),
            "utilization": float(self.utilization.mean()),
            "energy_j": float(self.energy_j.sum()),
            "failures": self.failures,
            "repairs": self.repairs,
        })

    def start(self, period_s: float, *, every: int = 1) -> None:
        """Drive :meth:`step` every *period_s* on the zone's simulator.

        *every* batches telemetry: devices still step (and consume
        draws) each period, but only every Nth step publishes — the
        trace shrinks by ~N while the churn replay stays identical.
        """
        if period_s <= 0:
            raise ConfigurationError("fleet period must be > 0")
        if every < 1:
            raise ConfigurationError("telemetry batching must be >= 1")
        self.ctx.sim.process(self._drive(period_s, every),
                             name=f"fleet-{self.zone}")

    def _drive(self, period_s: float, every: int):
        timeout = self.ctx.sim.timeout
        while True:
            yield timeout(period_s)
            self.step(period_s, publish=(self.steps + 1) % every == 0)

    # -- chaos -------------------------------------------------------------

    def schedule_outage(self, at_s: float, duration_s: float) -> None:
        """Force the whole zone dark for a window (correlated outage).

        Devices stay down for the window and then recover through the
        normal repair process — availability dips, then heals at the
        repair rate, exactly the scorecard shape chaos campaigns probe.
        """
        if duration_s <= 0:
            raise ConfigurationError("outage duration must be > 0")
        self.ctx.sim.process(self._outage(at_s, duration_s),
                             name=f"fleet-outage-{self.zone}")

    def _outage(self, at_s: float, duration_s: float):
        ctx = self.ctx
        yield ctx.sim.timeout(at_s - ctx.now)
        self.forced_outage = True
        # The fault is the causal root: the publish below rides inside a
        # root span, relay taps ship its context to subscriber zones,
        # and everything the continuum does about this outage — local
        # handlers, cross-zone reactions, the eventual repair — hangs
        # off one trace id (``repro-obs tree`` shows a single tree).
        with ctx.tracer.start_span(
                "continuum.fault.inject", layer="chaos", root=True,
                zone=self.zone, kind="zone_outage") as fault:
            fault_context = getattr(fault, "context", None)
            ctx.publish("chaos.zone.fail", {
                "zone": self.zone, "devices": int(self.up.sum()),
                "time_s": ctx.now})
        yield ctx.sim.timeout(duration_s)
        self.forced_outage = False
        # The repair happens long after the fault span closed; resuming
        # its context keeps the remediation on the same causal tree.
        with ctx.tracer.resume(fault_context):
            with ctx.tracer.start_span(
                    "continuum.fault.repair", layer="chaos",
                    zone=self.zone, kind="zone_outage"):
                ctx.publish("chaos.zone.repair", {
                    "zone": self.zone, "devices": 0, "time_s": ctx.now})

    # -- accounting --------------------------------------------------------

    def availability(self) -> float:
        """Fleet-mean fraction of elapsed time spent up."""
        if self.elapsed_s <= 0:
            return 1.0
        return 1.0 - float(self.downtime_s.sum()) \
            / (self.size * self.elapsed_s)

    def scorecard(self) -> dict:
        """Deterministic per-zone resilience summary (JSON-primitive)."""
        return {
            "zone": self.zone,
            "devices": self.size,
            "steps": self.steps,
            "up": int(self.up.sum()),
            "failures": self.failures,
            "repairs": self.repairs,
            "forced_failures": self.forced_failures,
            "availability": self.availability(),
            "energy_j": float(self.energy_j.sum()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeviceFleet(zone={self.zone!r}, size={self.size}, "
                f"up={int(self.up.sum())}, steps={self.steps})")
