"""Pillar 1 substrate: discrete-event simulator, devices, infrastructure.

The continuum package provides the execution fabric everything else runs
on: a from-scratch DES kernel (:mod:`repro.continuum.simulator`),
calibrated device models for each component family in the paper's
Figure 2 (:mod:`repro.continuum.devices`), the workload/task model
(:mod:`repro.continuum.workload`) and the layered infrastructure builder
(:mod:`repro.continuum.infrastructure`).
"""

from repro.continuum.simulator import (
    Simulator,
    Event,
    Process,
    Timeout,
    Resource,
    Store,
    Interrupt,
    SimulationError,
)
from repro.continuum.devices import (
    Device,
    DeviceKind,
    DeviceSpec,
    Layer,
    OperatingPoint,
    DEFAULT_OPERATING_POINTS,
    SPEC_CATALOGUE,
    TaskRecord,
    PerformanceCounters,
    make_device,
)
from repro.continuum.workload import (
    Application,
    ArrivalEvent,
    KernelClass,
    PoissonArrivals,
    PrivacyClass,
    Task,
    TaskRequirements,
)
from repro.continuum.infrastructure import (
    Infrastructure,
    OffloadStats,
    ZonePartition,
    build_reference_infrastructure,
)
from repro.continuum.fleet import FLEET_TELEMETRY_TOPIC, DeviceFleet
from repro.continuum.scale import ScaleConfig, ScaleResult, \
    run_scale_scenario
from repro.continuum.gateway import DeliveryRecord, Endpoint, GatewayHub
from repro.continuum.endpoints import (
    ActuationRecord,
    ActuatorProcess,
    SensorProcess,
    SensorReading,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "Store",
    "Interrupt",
    "SimulationError",
    "Device",
    "DeviceKind",
    "DeviceSpec",
    "Layer",
    "OperatingPoint",
    "DEFAULT_OPERATING_POINTS",
    "SPEC_CATALOGUE",
    "TaskRecord",
    "PerformanceCounters",
    "make_device",
    "Application",
    "ArrivalEvent",
    "KernelClass",
    "PoissonArrivals",
    "PrivacyClass",
    "Task",
    "TaskRequirements",
    "Infrastructure",
    "OffloadStats",
    "ZonePartition",
    "build_reference_infrastructure",
    "DeviceFleet",
    "FLEET_TELEMETRY_TOPIC",
    "ScaleConfig",
    "ScaleResult",
    "run_scale_scenario",
    "DeliveryRecord",
    "Endpoint",
    "GatewayHub",
    "ActuationRecord",
    "ActuatorProcess",
    "SensorProcess",
    "SensorReading",
]
