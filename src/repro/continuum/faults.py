"""Fault injection: device failures and repairs over simulated time.

Table I commits the orchestration to "improved reliability"; proving
that requires a substrate where components actually fail. A
:class:`FaultInjector` drives exponential failure/repair processes per
device; failed devices reject new work and interrupt what they are
running. The placement layer filters failed devices automatically, and
:class:`ReliabilityTracker` accounts availability, MTTF/MTTR and the
tasks lost to failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import CapacityError, ConfigurationError
from repro.continuum.devices import Device
from repro.continuum.infrastructure import Infrastructure
from repro.continuum.simulator import Simulator


@dataclass
class FaultEvent:
    """One failure or repair."""

    device: str
    kind: str  # "fail" | "repair"
    time_s: float


@dataclass
class ReliabilityTracker:
    """Per-device availability accounting."""

    events: list[FaultEvent] = field(default_factory=list)
    tasks_interrupted: int = 0

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    def availability(self, device: str, horizon_s: float) -> float:
        """Fraction of [0, horizon] the device was up."""
        if horizon_s <= 0:
            return 1.0
        down_time = 0.0
        down_since: float | None = None
        for event in self.events:
            if event.device != device:
                continue
            if event.kind == "fail" and down_since is None:
                down_since = event.time_s
            elif event.kind == "repair" and down_since is not None:
                down_time += event.time_s - down_since
                down_since = None
        if down_since is not None:
            down_time += horizon_s - down_since
        return max(0.0, 1.0 - down_time / horizon_s)

    def failures_of(self, device: str) -> int:
        return sum(1 for e in self.events
                   if e.device == device and e.kind == "fail")


class FaultInjector:
    """Exponential fail/repair process for a set of devices.

    ``mtbf_s`` is the mean time between failures while up; ``mttr_s``
    the mean time to repair while down. Starting the injector arms one
    DES process per device. Every failure and repair is published on
    the shared runtime bus (``continuum.fault.fail`` / ``.repair``) so
    the kube control plane, the MAPE loop and the monitors all see it
    on the same timeline.
    """

    def __init__(self, infrastructure: Infrastructure,
                 rng: random.Random | None = None,
                 mtbf_s: float = 3600.0, mttr_s: float = 60.0,
                 devices: list[str] | None = None):
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ConfigurationError("MTBF and MTTR must be positive")
        self.infrastructure = infrastructure
        self.ctx = infrastructure.ctx
        self.rng = rng or self.ctx.rng.python("continuum.faults")
        self.mtbf_s = mtbf_s
        self.mttr_s = mttr_s
        self.device_names = devices or list(infrastructure.devices)
        self.tracker = ReliabilityTracker()
        self._running = True
        self._failures = self.ctx.metrics.counter(
            "continuum.faults.failures", "device failures injected")
        self._repairs = self.ctx.metrics.counter(
            "continuum.faults.repairs", "device repairs applied")

    def start(self) -> None:
        """Arm the fail/repair process for every covered device."""
        for name in self.device_names:
            self.infrastructure.sim.process(
                self._drive(name), name=f"faults-{name}")

    def stop(self) -> None:
        self._running = False

    def _drive(self, name: str):
        sim = self.infrastructure.sim
        device = self.infrastructure.device(name)
        while self._running:
            yield sim.timeout(self.rng.expovariate(1.0 / self.mtbf_s))
            if not self._running:
                return
            self._fail(device)
            yield sim.timeout(self.rng.expovariate(1.0 / self.mttr_s))
            self._repair(device)

    def inject_now(self, device_name: str) -> None:
        """Fail *device_name* at the current simulated instant.

        Deterministic counterpart of the stochastic process — used by
        cross-layer scenarios that need a fault at an exact time.
        """
        self._fail(self.infrastructure.device(device_name))

    def repair_now(self, device_name: str) -> None:
        """Repair *device_name* at the current simulated instant."""
        self._repair(self.infrastructure.device(device_name))

    def _fail(self, device: Device) -> None:
        now = self.ctx.now
        # The inject span is the causal root of everything the fault
        # touches: bus delivery is synchronous, so kube evictions,
        # monitor samples and MAPE trigger capture all happen inside it
        # and share its trace id.
        with self.ctx.tracer.start_span(
                "continuum.fault.inject", layer="continuum", root=True,
                device=device.name):
            device.failed = True
            self.infrastructure.bump_generation()
            self.tracker.record(FaultEvent(device.name, "fail", now))
            # Interrupt in-flight work: waiting requests and running
            # tasks both lose their slot (the executing processes see
            # Interrupt).
            interrupted = 0
            for request in list(device.cores.users):
                interrupted += 1
            self.tracker.tasks_interrupted += interrupted
            self._failures.inc()
            self.ctx.publish("continuum.fault.fail", {
                "device": device.name, "time_s": now,
                "interrupted": interrupted})

    def _repair(self, device: Device) -> None:
        now = self.ctx.now
        with self.ctx.tracer.start_span(
                "continuum.fault.repair", layer="continuum", root=True,
                device=device.name):
            device.failed = False
            self.infrastructure.bump_generation()
            self.tracker.record(FaultEvent(device.name, "repair", now))
            self._repairs.inc()
            self.ctx.publish("continuum.fault.repair", {
                "device": device.name, "time_s": now})
