"""The layered cloud-fog-edge continuum infrastructure (paper Fig. 2).

An :class:`Infrastructure` groups devices into the three layers, attaches
them to a network topology, and exposes the queries the orchestration
stack needs: components per layer, capability filtering, vertical
neighbours for offloading, and fleet-wide telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import NotFoundError, ValidationError
from repro.core.ids import IdGenerator
from repro.continuum.devices import (
    Device,
    DeviceKind,
    Layer,
    OperatingPoint,
    make_device,
)
from repro.continuum.simulator import Simulator
from repro.net.topology import Network
from repro.runtime import RuntimeContext


@dataclass
class OffloadStats:
    """Counts of workload movements across and within layers."""

    horizontal: int = 0  # intra-layer migrations
    vertical_up: int = 0  # towards the cloud
    vertical_down: int = 0  # towards the edge

    def record(self, src_layer: Layer, dst_layer: Layer) -> None:
        """Classify and count one offload from *src_layer* to *dst_layer*."""
        order = [Layer.EDGE, Layer.FOG, Layer.CLOUD]
        delta = order.index(dst_layer) - order.index(src_layer)
        if delta == 0:
            self.horizontal += 1
        elif delta > 0:
            self.vertical_up += 1
        else:
            self.vertical_down += 1

    @property
    def total(self) -> int:
        return self.horizontal + self.vertical_up + self.vertical_down


@dataclass(frozen=True)
class ZonePartition:
    """A zone decomposition of an infrastructure, for sharded simulation.

    ``zones`` fixes the deterministic zone order (ranks) a
    :class:`~repro.runtime.shard.ShardedContext` builds from;
    ``min_cross_latency_s`` is the conservative lookahead bound — the
    smallest effective latency over links whose endpoints live in
    different zones (``inf`` when the partition cuts no links).
    """

    zones: tuple[str, ...]
    assignment: dict[str, str] = field(default_factory=dict)
    cross_links: tuple[tuple[str, str], ...] = ()
    min_cross_latency_s: float = float("inf")

    def devices_in(self, zone: str) -> list[str]:
        """Device names assigned to *zone*, in assignment order."""
        return [d for d, z in self.assignment.items() if z == zone]


class Infrastructure:
    """A running continuum: devices, layers, and the connecting network.

    Injected with a keyword-only ``ctx=`` — a
    :class:`~repro.runtime.RuntimeContext`, or a bare :class:`Simulator`
    wrapped via :meth:`RuntimeContext.adopt` for legacy call sites; the
    context's clock, bus and RNG tree are shared with every other layer
    observing this infrastructure.
    """

    def __init__(self, *, ctx: RuntimeContext | Simulator | None = None,
                 network: Network | None = None):
        self.ctx = RuntimeContext.adopt(ctx)
        self.sim = self.ctx.sim
        self.network = network or Network(ctx=self.ctx)
        self.devices: dict[str, Device] = {}
        self.offloads = OffloadStats()
        self._ids = IdGenerator()
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotone counter of cost-relevant infrastructure changes.

        Bumped when devices are added, when links change (delegated to
        the network's counter) and when faults fail/repair a device.
        Placement-cost caches are valid exactly as long as this value
        is unchanged.
        """
        return self._generation + self.network.generation

    def bump_generation(self) -> None:
        """Mark the infrastructure changed (invalidates cost caches)."""
        self._generation += 1

    # -- construction ---------------------------------------------------------

    def add_device(self, kind: DeviceKind, name: str | None = None,
                   operating_points: tuple[OperatingPoint, ...] | None = None,
                   attach_to: str | None = None,
                   link_latency_s: float | None = None,
                   link_bw_bps: float | None = None) -> Device:
        """Create a device, register it, and attach it to the network.

        When *attach_to* is given, a link with the supplied latency and
        bandwidth (or layer-appropriate defaults) connects the new device
        to that existing component.
        """
        name = name or self._ids.next(kind.value.replace("_", "-"))
        if name in self.devices:
            raise ValidationError(f"duplicate device name {name!r}")
        device = make_device(name, kind, operating_points, ctx=self.ctx)
        self.devices[name] = device
        self.network.add_host(name, layer=device.spec.layer.value)
        if attach_to is not None:
            latency, bandwidth = self._default_link(device, attach_to)
            self.network.add_link(
                name,
                attach_to,
                latency_s=link_latency_s if link_latency_s is not None
                else latency,
                bandwidth_bps=link_bw_bps if link_bw_bps is not None
                else bandwidth,
            )
        self._generation += 1
        self.ctx.publish("continuum.infra.device-added", {
            "device": name, "kind": kind.value,
            "layer": device.spec.layer.value})
        return device

    def _default_link(self, device: Device, peer_name: str) -> tuple[float, float]:
        """Layer-typical latency/bandwidth for a new attachment."""
        peer = self.device(peer_name)
        layers = {device.spec.layer, peer.spec.layer}
        if layers == {Layer.EDGE}:
            return 0.002, 100e6  # local wireless hop
        if layers == {Layer.EDGE, Layer.FOG}:
            return 0.005, 1e9  # metro access
        if layers == {Layer.FOG}:
            return 0.003, 10e9
        if layers == {Layer.FOG, Layer.CLOUD}:
            return 0.020, 10e9  # WAN
        if layers == {Layer.EDGE, Layer.CLOUD}:
            return 0.035, 500e6
        return 0.001, 40e9  # intra-cloud

    # -- queries ----------------------------------------------------------------

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        if name not in self.devices:
            raise NotFoundError(f"unknown device {name!r}")
        return self.devices[name]

    def layer_devices(self, layer: Layer) -> list[Device]:
        """All devices in *layer*."""
        return [d for d in self.devices.values() if d.spec.layer == layer]

    def devices_of_kind(self, kind: DeviceKind) -> list[Device]:
        """All devices of a concrete kind."""
        return [d for d in self.devices.values() if d.spec.kind == kind]

    def capable_devices(self, min_memory_bytes: int = 0,
                        kernel=None, layer: Layer | None = None,
                        min_security_level: str | None = None) -> list[Device]:
        """Filter devices by capability requirements.

        ``kernel`` restricts to devices with an accelerator for that
        kernel class; ``min_security_level`` uses the ordering
        low < medium < high.
        """
        order = {"low": 0, "medium": 1, "high": 2}
        result = []
        for device in self.devices.values():
            if device.spec.memory_bytes < min_memory_bytes:
                continue
            if kernel is not None and kernel not in device.spec.accel_kernels:
                continue
            if layer is not None and device.spec.layer != layer:
                continue
            if min_security_level is not None:
                have = order.get(device.spec.max_security_level, 0)
                need = order.get(min_security_level, 0)
                if have < need:
                    continue
            result.append(device)
        return result

    def partition(self, by=None) -> ZonePartition:
        """Decompose the infrastructure into zones for sharded simulation.

        *by* names each device's zone: ``None`` partitions by layer
        (cloud / fog / edge — the coarsest cut), a callable receives the
        :class:`Device`, and a mapping is looked up by device name. The
        returned :class:`ZonePartition` carries the sorted zone order,
        the device assignment, the links the cut crosses and the minimum
        effective cross-zone latency — the epoch lookahead a
        :class:`~repro.runtime.shard.ShardedContext` must respect.
        """
        assignment: dict[str, str] = {}
        for name, device in self.devices.items():
            if by is None:
                zone = device.spec.layer.value
            elif callable(by):
                zone = by(device)
            else:
                zone = by[name]
            assignment[name] = str(zone)
        cross = []
        min_latency = float("inf")
        for link in self.network.links:
            zone_a = assignment.get(link.a)
            zone_b = assignment.get(link.b)
            if zone_a is None or zone_b is None or zone_a == zone_b:
                continue
            cross.append(link.key())
            latency = link.effective_latency()
            if latency < min_latency:
                min_latency = latency
        return ZonePartition(
            zones=tuple(sorted(set(assignment.values()))),
            assignment=assignment,
            cross_links=tuple(sorted(cross)),
            min_cross_latency_s=min_latency)

    def record_offload(self, src_device: str, dst_device: str) -> None:
        """Record a workload movement for the Fig. 2 offload statistics."""
        self.offloads.record(
            self.device(src_device).spec.layer,
            self.device(dst_device).spec.layer,
        )

    # -- fleet telemetry -----------------------------------------------------------

    def layer_report(self) -> dict[str, dict[str, float]]:
        """Aggregate utilization/energy/tasks per layer (Fig. 2 bench)."""
        report: dict[str, dict[str, float]] = {}
        for layer in Layer:
            members = self.layer_devices(layer)
            if not members:
                continue
            report[layer.value] = {
                "devices": float(len(members)),
                "mean_utilization": (
                    sum(d.utilization() for d in members) / len(members)
                ),
                "total_energy_j": sum(d.total_energy() for d in members),
                "tasks_executed": float(
                    sum(d.pmc.tasks_executed for d in members)
                ),
                "accelerated_tasks": float(
                    sum(d.pmc.accelerated_tasks for d in members)
                ),
            }
        return report

    def __len__(self) -> int:
        return len(self.devices)


def build_reference_infrastructure(ctx: RuntimeContext | Simulator | None
                                   = None,
                                   edge_sites: int = 2,
                                   gateways_per_site: int = 1,
                                   fmdcs: int = 1,
                                   cloud_servers: int = 2) -> Infrastructure:
    """Construct the paper's reference infrastructure (Fig. 2).

    Each edge site holds one multicore, one HMPSoC FPGA and one
    RISC-V+CGRA device behind a smart gateway; gateways connect to the
    FMDC tier, which connects to the cloud.
    """
    infra = Infrastructure(ctx=ctx)
    cloud_names = []
    for i in range(cloud_servers):
        server = infra.add_device(DeviceKind.CLOUD_SERVER,
                                  name=f"cloud-{i:02d}")
        cloud_names.append(server.name)
        if i > 0:
            infra.network.add_link(server.name, cloud_names[0],
                                   latency_s=0.0005, bandwidth_bps=40e9)
    fmdc_names = []
    for i in range(fmdcs):
        fmdc = infra.add_device(DeviceKind.FMDC, name=f"fmdc-{i:02d}",
                                attach_to=cloud_names[i % len(cloud_names)])
        fmdc_names.append(fmdc.name)
    for site in range(edge_sites):
        for g in range(gateways_per_site):
            gw = infra.add_device(
                DeviceKind.SMART_GATEWAY,
                name=f"gw-{site:02d}-{g}",
                attach_to=fmdc_names[site % len(fmdc_names)],
            )
            infra.add_device(DeviceKind.EDGE_MULTICORE,
                             name=f"mc-{site:02d}-{g}", attach_to=gw.name)
            infra.add_device(DeviceKind.HMPSOC_FPGA,
                             name=f"fpga-{site:02d}-{g}", attach_to=gw.name)
            infra.add_device(DeviceKind.RISCV_CGRA,
                             name=f"riscv-{site:02d}-{g}", attach_to=gw.name)
    return infra
