"""Discrete-event simulation kernel.

A compact, generator-based process simulator in the style of SimPy,
implemented from scratch so the reproduction has no external simulation
dependency. Processes are Python generators that ``yield`` events; the
:class:`Simulator` advances virtual time and resumes processes when the
events they wait on fire.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(2.0)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[2.0]
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.core.errors import ReproError


class SimulationError(ReproError):
    """Raised for illegal simulator operations (double-trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event priorities: URGENT fires before NORMAL at the same timestamp.
URGENT = 0
NORMAL = 1

# Heap entries are (time, key, event) where key packs (priority, seq)
# into one int: priority in the top bits, the schedule sequence number
# in the low 56. One packed int compares cheaper than two tuple slots;
# 2**56 schedules at 10M events/s would take two centuries to exhaust.
_SEQ_BITS = 56


class Event:
    """A condition that may fire once at some point in simulated time.

    Processes wait on events by yielding them. After the event fires,
    :attr:`value` carries its payload (or the exception, when failed).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        # Set when a failed event's exception was delivered to someone.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded. Valid only after triggering."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload the event fired with."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":  # perf: hot
        """Schedule this event to fire successfully with *value*."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        heappush(sim._queue,
                 (sim._now, (priority << _SEQ_BITS) | sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire with an exception."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        heappush(sim._queue,
                 (sim._now, (priority << _SEQ_BITS) | sim._seq, self))
        sim._seq += 1
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still see it.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """Event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # perf: hot
        # Inlined Event.__init__ + scheduling: timeouts are the single
        # most constructed object in a simulation (timeout(0) yields in
        # polling loops especially), so skip the super() dispatch and
        # the _schedule call. delay==0 takes the first branch free.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        heappush(sim._queue,
                 (sim._now + delay if delay else sim._now,
                  (NORMAL << _SEQ_BITS) | sim._seq, self))
        sim._seq += 1


class Process(Event):
    """A running generator-based process.

    The process event itself fires when the generator finishes; its value
    is the generator's return value (or the uncaught exception).
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):  # perf: hot
        # Inlined Event.__init__ for self and for the immediate
        # initialization event (same treatment as Timeout): process
        # construction dominates churn-heavy scenarios, and the two
        # super()/ctor dispatches are measurable at fleet scale.
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._defused = False
        if not hasattr(generator, "send"):
            raise TypeError("process() requires a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        # Kick off on construction via an immediate initialization event.
        init = Event.__new__(Event)
        init.sim = sim
        init.callbacks = [self._resume]
        init._value = None
        init._ok = True
        init._defused = False
        heappush(sim._queue,
                 (sim._now, (URGENT << _SEQ_BITS) | sim._seq, init))
        sim._seq += 1

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        self.sim._schedule(interrupt_event, URGENT)
        interrupt_event.add_callback(self._resume)

    def _resume(self, trigger: Event) -> None:
        if not self.is_alive:
            return
        # Detach from whatever we were officially waiting on.
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self.generator.send(trigger._value)
            else:
                # Interrupts and plain failures both arrive via throw();
                # the process distinguishes them by exception type.
                trigger._defused = True
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # process died with an error
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
            try:
                self.generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as err:
                self.fail(err)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires when every child event has fired; fails fast on first failure."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({e: e._value for e in self.events})


class AnyOf(Event):
    """Fires as soon as any child event fires."""

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed({event: event._value})


class Simulator:
    """The event loop: a priority queue of (time, packed-key, event)."""

    __slots__ = ("_now", "_queue", "_seq", "processed_events", "_profiler")

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.processed_events = 0
        # Opt-in profiling hook (repro.obs.profiler.DesProfiler). Dark
        # by default: the drain loops pay one attribute check; the
        # wall-clock source lives on the profiler, never here.
        self._profiler: Any = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event; something must succeed()/fail() it."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of *events* fires."""
        return AnyOf(self, events)

    # -- scheduling and execution -------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heappush(self._queue, (self._now + delay,
                               (priority << _SEQ_BITS) | self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:  # perf: hot
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        prof = self._profiler
        when, _key, event = heappop(self._queue)
        if prof is not None:
            sim_dt = when - self._now
            t0 = prof.clock()
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if prof is not None:
            prof.account(event, callbacks or (), sim_dt, prof.clock() - t0)
        self.processed_events += 1
        if event._ok is False and not event._defused:
            # An un-waited-for failure must not pass silently.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:  # perf: hot
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a time (run up to and including that instant), an
        :class:`Event` (run until it fires, returning its value), or None
        (run to quiescence).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran dry before the awaited event fired"
                    )
                self.step()
            if stop_event._ok:
                return stop_event._value
            stop_event._defused = True
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError("run(until=...) lies in the past")
        if self._profiler is not None:
            self._drain_profiled(deadline)
            if self._now < deadline < float("inf"):
                self._now = deadline
            return None
        # Inlined step() drain loop: one bound method call per event is
        # measurable at storm rates, and the queue/counter locals keep
        # attribute loads out of the loop body.
        queue = self._queue
        processed = 0
        try:
            while queue and queue[0][0] <= deadline:
                when, _key, event = heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                processed += 1
                if event._ok is False and not event._defused:
                    raise event._value
        finally:
            self.processed_events += processed
        if self._now < deadline < float("inf"):
            self._now = deadline
        return None

    def _drain_profiled(self, deadline: float) -> None:
        """Mirror of run()'s drain loop with per-event profiler accounting.

        Kept as a separate method so the unprofiled hot path above pays
        only a single attribute check when no profiler is installed.
        """
        queue = self._queue
        prof = self._profiler
        clock = prof.clock
        account = prof.account
        processed = 0
        try:
            while queue and queue[0][0] <= deadline:
                when, _key, event = heappop(queue)
                sim_dt = when - self._now
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                t0 = clock()
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                account(event, callbacks or (), sim_dt, clock() - t0)
                processed += 1
                if event._ok is False and not event._defused:
                    raise event._value
        finally:
            self.processed_events += processed


class Resource:
    """A capacity-limited resource with a FIFO wait queue.

    Usage::

        req = resource.request()
        yield req
        ...critical section...
        resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Event] = []
        self.queue: deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Event:
        """Return an event that fires once a slot is granted."""
        event = Event(self.sim)
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.succeed(event)
        else:
            self.queue.append(event)
        return event

    def release(self, request: Event) -> None:
        """Return the slot held by *request* and wake the next waiter."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        else:
            raise SimulationError("release() of a request that holds no slot")
        while self.queue and len(self.users) < self.capacity:
            waiter = self.queue.popleft()
            self.users.append(waiter)
            waiter.succeed(waiter)


class Store:
    """An unbounded (or bounded) FIFO buffer of items between processes."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Return an event that fires once *item* is accepted."""
        event = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            event.succeed(item)
            if self._putters:
                putter, pending = self._putters.popleft()
                self.items.append(pending)
                putter.succeed(None)
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
