"""Workload model: tasks, task graphs, and workload generators.

A :class:`Task` is the unit of computation the continuum schedules: an
amount of compute work (mega-operations), data to move in and out, and
non-functional requirements (latency budget, privacy class, security
level, accelerability). Tasks compose into DAG-shaped
:class:`Application`s, the unit MIRTO deploys from a TOSCA request.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

import networkx as nx

from repro.core.errors import ValidationError


class PrivacyClass(str, Enum):
    """How sensitive a task's input data is.

    ``RAW_PERSONAL`` data must stay at the edge (telerehabilitation video),
    ``AGGREGATED`` may reach the fog, ``PUBLIC`` may go anywhere.
    """

    PUBLIC = "public"
    AGGREGATED = "aggregated"
    RAW_PERSONAL = "raw_personal"


class KernelClass(str, Enum):
    """Computational kernel family, used for accelerator affinity."""

    GENERAL = "general"
    DSP = "dsp"
    NEURAL = "neural"
    CRYPTO = "crypto"
    ANALYTICS = "analytics"


@dataclass(frozen=True)
class TaskRequirements:
    """Non-functional requirements attached to a task."""

    latency_budget_s: float = float("inf")
    privacy: PrivacyClass = PrivacyClass.PUBLIC
    min_security_level: str = "low"  # one of repro.security.levels names
    preferred_layer: str | None = None

    def __post_init__(self):
        if self.latency_budget_s <= 0:
            raise ValidationError("latency budget must be positive")


@dataclass
class Task:
    """A schedulable unit of work.

    Parameters
    ----------
    name:
        Unique name within its application.
    megaops:
        Compute demand in millions of operations.
    input_bytes / output_bytes:
        Data transferred to/from the executing device.
    kernel:
        Kernel family; accelerators speed up matching kernels.
    memory_bytes:
        Resident memory required while running.
    requirements:
        Non-functional constraints the orchestrator must honour.
    """

    name: str
    megaops: float
    input_bytes: int = 0
    output_bytes: int = 0
    kernel: KernelClass = KernelClass.GENERAL
    memory_bytes: int = 64 * 1024 * 1024
    requirements: TaskRequirements = field(default_factory=TaskRequirements)

    def __post_init__(self):
        if self.megaops < 0:
            raise ValidationError(f"task {self.name}: negative megaops")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValidationError(f"task {self.name}: negative data size")
        if self.memory_bytes < 0:
            raise ValidationError(f"task {self.name}: negative memory")

    def scaled(self, factor: float) -> "Task":
        """Return a copy with compute and data scaled by *factor*."""
        return Task(
            name=self.name,
            megaops=self.megaops * factor,
            input_bytes=int(self.input_bytes * factor),
            output_bytes=int(self.output_bytes * factor),
            kernel=self.kernel,
            memory_bytes=self.memory_bytes,
            requirements=self.requirements,
        )


class Application:
    """A DAG of tasks with data dependencies.

    Edges carry the number of bytes the upstream task sends downstream.
    """

    def __init__(self, name: str):
        self.name = name
        self.graph = nx.DiGraph()
        # Structure queries (topological order, predecessor lists, edge
        # weights) are hot in placement estimation; they are cached and
        # invalidated whenever the DAG mutates.
        self._dag_version = 0
        self._cache_version = -1
        self._topo_tasks: list[Task] = []
        self._preds: dict[str, list[str]] = {}
        self._edges: dict[tuple[str, str], int] = {}

    def add_task(self, task: Task) -> Task:
        """Add *task*; names must be unique within the application."""
        if task.name in self.graph:
            raise ValidationError(
                f"application {self.name}: duplicate task {task.name!r}"
            )
        self.graph.add_node(task.name, task=task)
        self._dag_version += 1
        return task

    def connect(self, src: str, dst: str, bytes_transferred: int = 0) -> None:
        """Add a dependency edge from *src* to *dst*."""
        for endpoint in (src, dst):
            if endpoint not in self.graph:
                raise ValidationError(
                    f"application {self.name}: unknown task {endpoint!r}"
                )
        self.graph.add_edge(src, dst, bytes=bytes_transferred)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(src, dst)
            raise ValidationError(
                f"application {self.name}: edge {src}->{dst} creates a cycle"
            )
        self._dag_version += 1

    def _refresh_structure(self) -> None:
        if self._cache_version == self._dag_version:
            return
        self._topo_tasks = [
            self.graph.nodes[n]["task"]
            for n in nx.topological_sort(self.graph)
        ]
        self._preds = {n: list(self.graph.predecessors(n))
                       for n in self.graph}
        self._edges = {(u, v): data.get("bytes", 0)
                       for u, v, data in self.graph.edges(data=True)}
        self._cache_version = self._dag_version

    @property
    def tasks(self) -> list[Task]:
        """All tasks in topological order."""
        self._refresh_structure()
        return list(self._topo_tasks)

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        if name not in self.graph:
            raise ValidationError(
                f"application {self.name}: unknown task {name!r}"
            )
        return self.graph.nodes[name]["task"]

    def predecessors(self, name: str) -> list[str]:
        """Names of tasks that must finish before *name* starts."""
        self._refresh_structure()
        preds = self._preds.get(name)
        if preds is None:  # unknown task: defer to the graph's error
            return list(self.graph.predecessors(name))
        return list(preds)

    def successors(self, name: str) -> list[str]:
        """Names of tasks unlocked by *name* finishing."""
        return list(self.graph.successors(name))

    def edge_bytes(self, src: str, dst: str) -> int:
        """Bytes transferred on the src->dst edge."""
        self._refresh_structure()
        nbytes = self._edges.get((src, dst))
        if nbytes is None:  # unknown edge: defer to the graph's error
            return self.graph.edges[src, dst].get("bytes", 0)
        return nbytes

    def total_megaops(self) -> float:
        """Sum of compute demand over all tasks."""
        return sum(t.megaops for t in self.tasks)

    def critical_path_megaops(self) -> float:
        """Compute demand along the heaviest dependency chain."""
        best: dict[str, float] = {}
        for node in nx.topological_sort(self.graph):
            task = self.graph.nodes[node]["task"]
            preds = list(self.graph.predecessors(node))
            base = max((best[p] for p in preds), default=0.0)
            best[node] = base + task.megaops
        return max(best.values(), default=0.0)

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Application({self.name!r}, tasks={len(self)}, "
            f"edges={self.graph.number_of_edges()})"
        )


@dataclass
class ArrivalEvent:
    """One application instance arriving at a given simulated time."""

    time_s: float
    application: Application
    source_component: str | None = None


class PoissonArrivals:
    """Generates application arrivals with exponential inter-arrival times."""

    def __init__(self, application: Application, rate_per_s: float, rng,
                 source_component: str | None = None):
        if rate_per_s <= 0:
            raise ValidationError("arrival rate must be positive")
        self.application = application
        self.rate_per_s = rate_per_s
        self.rng = rng
        self.source_component = source_component
        self._counter = itertools.count()

    def until(self, horizon_s: float) -> Iterator[ArrivalEvent]:
        """Yield arrival events with times strictly below *horizon_s*."""
        t = 0.0
        while True:
            t += self.rng.expovariate(self.rate_per_s)
            if t >= horizon_s:
                return
            instance = _instantiate(self.application, next(self._counter))
            yield ArrivalEvent(t, instance, self.source_component)


def _instantiate(app: Application, index: int) -> Application:
    """Clone *app* under an instance-specific name (tasks are shared)."""
    clone = Application(f"{app.name}#{index}")
    clone.graph = app.graph  # task DAG is immutable per run; share it
    return clone
