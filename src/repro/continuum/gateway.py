"""The smart gateway as a data-exchange hub (paper Sec. III).

"The smart gateway acts as a hub for data exchange among a diversity of
actors at the edge (e.g., sensors, actuators, HW accelerators, etc.) and
the cloud, and supports light local processing; ... it is customizable
with ad-hoc user-defined interfaces, and natively supports several
protocols (e.g. HTTP, MQTT, etc.)."

:class:`GatewayHub` implements that role on top of the network
substrate: endpoints register with their supported protocols, the hub
bridges between them (re-framing messages from the sender's protocol to
the receiver's), applies optional *local processing* functions to
payloads in flight (filtering/aggregation — the "light local
processing"), and store-and-forwards traffic for unreachable uplinks,
draining the buffer when connectivity returns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import CapacityError, DeliveryError, NotFoundError, \
    ValidationError
from repro.continuum.simulator import Simulator
from repro.net.protocols import Message, PROTOCOLS, negotiate
from repro.net.topology import Network
from repro.runtime import RuntimeContext


@dataclass
class Endpoint:
    """A registered actor: sensor, actuator, accelerator or uplink."""

    name: str
    protocols: list[str]
    reachable: bool = True


@dataclass
class DeliveryRecord:
    """Accounting for one hub-mediated delivery."""

    src: str
    dst: str
    topic: str
    ingress_protocol: str
    egress_protocol: str
    payload_bytes: int
    wire_bytes: int
    buffered: bool
    delivered_at_s: float


Processor = Callable[[dict[str, Any]], dict[str, Any] | None]


class GatewayHub:
    """Protocol-bridging, store-and-forward message hub."""

    def __init__(self, network: Network, name: str,
                 buffer_limit: int = 256, *,
                 ctx: RuntimeContext | Simulator | None = None):
        if name not in network.graph:
            raise NotFoundError(f"gateway host {name!r} not in network")
        self.ctx = RuntimeContext.adopt(ctx)
        self.sim = self.ctx.sim
        self.network = network
        self.name = name
        self.buffer_limit = buffer_limit
        self.endpoints: dict[str, Endpoint] = {}
        self.processors: dict[str, list[Processor]] = {}
        self.deliveries: list[DeliveryRecord] = []
        self.dropped = 0
        self._buffers: dict[str, deque[Message]] = {}
        #: Chaos brownout: probability a delivery is dropped in flight.
        #: Set via :meth:`set_drop_rate` (the ChaosController ramps it);
        #: draws come from the hub's own seed-tree stream so campaigns
        #: replay byte-identically.
        self.drop_rate = 0.0
        self._chaos_rng = self.ctx.rng.python(f"chaos.gateway.{name}")
        metrics = self.ctx.metrics
        self._deliveries_ctr = metrics.counter(
            "continuum.gateway.deliveries", "hub-mediated deliveries",
            label_key="gateway")
        self._dropped_ctr = metrics.counter(
            "continuum.gateway.dropped",
            "messages dropped at a full store-and-forward buffer",
            label_key="gateway")

    # -- registration --------------------------------------------------------

    def register(self, name: str, protocols: list[str]) -> Endpoint:
        """Register an endpoint and its protocol capabilities."""
        unknown = [p for p in protocols if p not in PROTOCOLS]
        if unknown:
            raise ValidationError(f"unknown protocols: {unknown}")
        if not protocols:
            raise ValidationError("endpoint needs at least one protocol")
        if name not in self.network.graph:
            raise NotFoundError(f"endpoint host {name!r} not in network")
        endpoint = Endpoint(name=name, protocols=list(protocols))
        self.endpoints[name] = endpoint
        return endpoint

    def set_reachable(self, name: str, reachable: bool) -> None:
        """Mark an endpoint (typically the uplink) up or down."""
        self._endpoint(name).reachable = reachable

    def set_drop_rate(self, rate: float) -> None:
        """Set the brownout drop probability for in-flight deliveries.

        Dropped deliveries raise :class:`DeliveryError` in the
        exchanging process so resilience policies can retry them.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValidationError(
                f"drop rate must be in [0, 1], got {rate}")
        self.drop_rate = rate

    def _endpoint(self, name: str) -> Endpoint:
        if name not in self.endpoints:
            raise NotFoundError(f"unregistered endpoint {name!r}")
        return self.endpoints[name]

    # -- local processing ("light local processing") ----------------------------

    def add_processor(self, topic: str, processor: Processor) -> None:
        """Apply *processor* to payloads on *topic*.

        Returning ``None`` filters the message out entirely (e.g. a
        dead-band filter); returning a dict replaces the payload (e.g.
        aggregation or unit conversion).
        """
        self.processors.setdefault(topic, []).append(processor)

    def _process(self, topic: str,
                 payload: dict[str, Any]) -> dict[str, Any] | None:
        for processor in self.processors.get(topic, []):
            payload = processor(payload)
            if payload is None:
                return None
        return payload

    # -- message exchange -----------------------------------------------------------

    def exchange(self, src: str, dst: str, topic: str,
                 payload: dict[str, Any]):
        """DES process: route one message src -> hub -> dst.

        The sender transmits in its own protocol to the hub; the hub
        re-frames in a protocol the receiver supports. If the receiver
        is unreachable, the message is buffered (or dropped when the
        buffer is full) and the process returns None.
        """
        sender = self._endpoint(src)
        receiver = self._endpoint(dst)
        ingress = PROTOCOLS[sender.protocols[0]]
        message = Message(src=src, dst=self.name, topic=topic,
                          payload=payload)
        # Leg 1: sender -> hub, in the sender's protocol.
        yield self.sim.process(self.network.transfer(
            src, self.name, len(message.encode()),
            wire_overhead=ingress.wire_bytes(message)
            - len(message.encode())))
        processed = self._process(topic, payload)
        if processed is None:
            return None  # filtered by local processing
        egress = negotiate(receiver.protocols, receiver.protocols)
        out = Message(src=self.name, dst=dst, topic=topic,
                      payload=processed)
        if not receiver.reachable:
            buffer = self._buffers.setdefault(dst, deque())
            if len(buffer) >= self.buffer_limit:
                self.dropped += 1
                self._dropped_ctr.inc(label=self.name)
                with self.ctx.tracer.start_span(
                        "continuum.gateway.drop", layer="continuum",
                        gateway=self.name, dst=dst, topic=topic):
                    self.ctx.publish(
                        f"continuum.gateway.{self.name}.dropped",
                        {"dst": dst, "topic": topic})
                return None
            buffer.append(out)
            self.deliveries.append(DeliveryRecord(
                src=src, dst=dst, topic=topic,
                ingress_protocol=ingress.name,
                egress_protocol=egress.name,
                payload_bytes=len(out.encode()),
                wire_bytes=0, buffered=True,
                delivered_at_s=float("nan")))
            return None
        record = yield self.sim.process(
            self._deliver(out, ingress.name, egress, buffered=False,
                          original_src=src))
        return record

    def _deliver(self, message: Message, ingress_name: str, egress,
                 buffered: bool, original_src: str):
        if self.drop_rate > 0.0 \
                and self._chaos_rng.random() < self.drop_rate:
            self.dropped += 1
            self._dropped_ctr.inc(label=self.name)
            with self.ctx.tracer.start_span(
                    "continuum.gateway.drop", layer="continuum",
                    gateway=self.name, dst=message.dst,
                    topic=message.topic, reason="brownout"):
                self.ctx.publish(
                    f"continuum.gateway.{self.name}.dropped",
                    {"dst": message.dst, "topic": message.topic,
                     "reason": "brownout"})
            raise DeliveryError(
                f"gateway {self.name} dropped message to "
                f"{message.dst!r} (brownout)")
        wire = egress.wire_bytes(message)
        yield self.sim.process(self.network.transfer(
            self.name, message.dst, len(message.encode()),
            wire_overhead=wire - len(message.encode())))
        # Span covers only the synchronous completion (record + publish):
        # the transfer above yields into the DES, where an ambient span
        # would leak onto unrelated interleaved events.
        with self.ctx.tracer.start_span(
                "continuum.gateway.deliver", layer="continuum",
                gateway=self.name, dst=message.dst, topic=message.topic):
            record = DeliveryRecord(
                src=original_src, dst=message.dst, topic=message.topic,
                ingress_protocol=ingress_name,
                egress_protocol=egress.name,
                payload_bytes=len(message.encode()),
                wire_bytes=wire, buffered=buffered,
                delivered_at_s=self.sim.now)
            self.deliveries.append(record)
            self._deliveries_ctr.inc(label=self.name)
            self.ctx.publish(f"continuum.gateway.{self.name}.delivered",
                             record)
        return record

    def flush(self, dst: str):
        """DES process: drain the store-and-forward buffer towards *dst*.

        Call after the endpoint becomes reachable again; returns the
        number of messages delivered.
        """
        receiver = self._endpoint(dst)
        if not receiver.reachable:
            raise ValidationError(f"endpoint {dst!r} still unreachable")
        egress = negotiate(receiver.protocols, receiver.protocols)
        delivered = 0
        buffer = self._buffers.get(dst, deque())
        while buffer:
            message = buffer.popleft()
            yield self.sim.process(self._deliver(
                message, "buffered", egress, buffered=True,
                original_src=message.src))
            delivered += 1
        return delivered

    # -- introspection ------------------------------------------------------------

    def buffered_count(self, dst: str) -> int:
        return len(self._buffers.get(dst, deque()))

    def bridge_matrix(self) -> dict[tuple[str, str], int]:
        """Deliveries per (ingress protocol, egress protocol) pair."""
        matrix: dict[tuple[str, str], int] = {}
        for record in self.deliveries:
            if record.wire_bytes > 0:
                key = (record.ingress_protocol, record.egress_protocol)
                matrix[key] = matrix.get(key, 0) + 1
        return matrix
