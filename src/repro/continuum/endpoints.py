"""Extreme-edge endpoints: sensors and actuators behind the gateway.

Fig. 2 roots the continuum in "a diversity of actors at the edge (e.g.,
sensors, actuators, HW accelerators, etc.)". A :class:`SensorProcess`
periodically samples a reading generator and publishes through the
:class:`~repro.continuum.gateway.GatewayHub` (paying real protocol and
network costs); an :class:`ActuatorProcess` consumes command messages
and tracks actuation latency — the full sense-decide-actuate loop the
use cases close over the continuum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import ConfigurationError, ReproError
from repro.continuum.gateway import GatewayHub
from repro.continuum.simulator import Simulator, Store
from repro.runtime import RuntimeContext


@dataclass
class SensorReading:
    """One published sample."""

    sensor: str
    sequence: int
    time_s: float
    payload: dict[str, Any]


class SensorProcess:
    """Periodic sensor publishing via the gateway hub.

    ``sample_fn(sequence)`` produces the payload dict; publication pays
    the sensor's protocol and link costs. Stops after ``max_samples``
    or when :meth:`stop` is called.

    An optional resilience ``policy`` (see ``repro.chaos.policies``)
    wraps each exchange; exchanges the policy gives up on (retries
    exhausted, circuit open, timeout) are counted in :attr:`lost`
    instead of crashing the sensor — the graceful behaviour a chaos
    campaign exercises.
    """

    def __init__(self, hub: GatewayHub, name: str,
                 destination: str, topic: str,
                 sample_fn: Callable[[int], dict[str, Any]],
                 period_s: float, max_samples: int | None = None,
                 *, ctx: "RuntimeContext | Simulator | None" = None,
                 policy=None):
        if period_s <= 0:
            raise ConfigurationError("sensor period must be positive")
        self.ctx = RuntimeContext.adopt(ctx)
        sim = self.ctx.sim
        self.sim = sim
        self.hub = hub
        self.name = name
        self.destination = destination
        self.topic = topic
        self.sample_fn = sample_fn
        self.period_s = period_s
        self.max_samples = max_samples
        self.policy = policy
        self.readings: list[SensorReading] = []
        #: Exchanges abandoned by the resilience policy.
        self.lost = 0
        self._running = True
        self.process = sim.process(self._run(), name=f"sensor-{name}")

    def stop(self) -> None:
        self._running = False

    def _exchange(self, payload: dict[str, Any], sequence: int):
        return self.hub.exchange(
            self.name, self.destination, self.topic,
            {**payload, "seq": sequence})

    def _run(self):
        sequence = 0
        while self._running:
            if self.max_samples is not None \
                    and sequence >= self.max_samples:
                return sequence
            payload = self.sample_fn(sequence)
            reading = SensorReading(
                sensor=self.name, sequence=sequence,
                time_s=self.sim.now, payload=payload)
            self.readings.append(reading)
            if self.policy is None:
                yield self.sim.process(self._exchange(payload, sequence))
            else:
                try:
                    yield from self.policy.call(
                        lambda: self._exchange(payload, sequence))
                except ReproError:
                    self.lost += 1
            sequence += 1
            yield self.sim.timeout(self.period_s)
        return sequence


@dataclass
class ActuationRecord:
    """One executed command with its end-to-end latency."""

    sequence: int
    issued_at_s: float
    executed_at_s: float

    @property
    def latency_s(self) -> float:
        return self.executed_at_s - self.issued_at_s


class ActuatorProcess:
    """Consumes commands from a queue and 'actuates' after a fixed
    mechanical delay, recording end-to-end latency."""

    def __init__(self, name: str, actuation_delay_s: float = 0.005, *,
                 ctx: "RuntimeContext | Simulator | None" = None):
        if actuation_delay_s < 0:
            raise ConfigurationError("actuation delay must be >= 0")
        self.ctx = RuntimeContext.adopt(ctx)
        sim = self.ctx.sim
        self.sim = sim
        self.name = name
        self.actuation_delay_s = actuation_delay_s
        self.queue = Store(sim)
        self.records: list[ActuationRecord] = []
        self._running = True
        self.process = sim.process(self._run(), name=f"actuator-{name}")

    def command(self, sequence: int, issued_at_s: float):
        """Enqueue a command (an event; yield it to await acceptance)."""
        return self.queue.put((sequence, issued_at_s))

    def stop(self) -> None:
        self._running = False
        # Unblock the consumer with a poison pill.
        self.queue.put(None)

    def _run(self):
        while self._running:
            item = yield self.queue.get()
            if item is None:
                return len(self.records)
            sequence, issued_at = item
            yield self.sim.timeout(self.actuation_delay_s)
            self.records.append(ActuationRecord(
                sequence=sequence, issued_at_s=issued_at,
                executed_at_s=self.sim.now))
        return len(self.records)

    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency_s for r in self.records) / len(self.records)
