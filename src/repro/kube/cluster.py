"""The cluster control plane: API objects, scheduling, reconciliation.

A :class:`KubeCluster` is one Kubernetes-like control plane — the paper
runs one per layer/site ("all layers support Kubernetes as low-level
orchestrator"). It stores nodes and pods, schedules pending pods with
the filter-and-score :class:`~repro.kube.scheduler.Scheduler`, runs a
deployment controller that maintains replica counts, and evicts pods
from failed nodes. LIQO peering (:mod:`repro.kube.liqo`) reflects other
clusters into this one as virtual nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import (
    ConfigurationError,
    NotFoundError,
    OrchestrationError,
    ValidationError,
)
from repro.core.events import EventBus
from repro.core.ids import IdGenerator
from repro.obs import null_span
from repro.runtime import RuntimeContext
from repro.kube.objects import (
    Deployment,
    Node,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequest,
)
from repro.kube.scheduler import Scheduler


@dataclass
class ClusterEvent:
    """A control-plane event (scheduling decision, eviction, ...)."""

    kind: str
    object_name: str
    message: str
    time_s: float = 0.0


class KubeCluster:
    """One Kubernetes-style cluster.

    The control plane no longer wires a private event bus: inject a
    :class:`~repro.runtime.RuntimeContext` so pod/bind/evict events land
    on the same timeline as device faults and MAPE decisions. A bare
    ``bus`` is still accepted for isolated unit tests; with neither, a
    private context is created (cluster events then live on their own
    timeline).
    """

    def __init__(self, name: str, scheduler: Scheduler | None = None, *,
                 bus: EventBus | None = None,
                 ctx: RuntimeContext | None = None):
        self.name = name
        self.scheduler = scheduler or Scheduler()
        self.ctx = ctx
        # Per-node circuit breakers on the bind path; armed by
        # enable_bind_breakers().
        self._bind_breakers: dict | None = None
        self._breaker_params: tuple[int, float] | None = None
        if bus is None:
            if self.ctx is None:
                self.ctx = RuntimeContext()
            bus = self.ctx.bus
        self.bus = bus
        self.nodes: dict[str, Node] = {}
        self.pods: dict[str, Pod] = {}
        self.deployments: dict[str, Deployment] = {}
        self.events: list[ClusterEvent] = []
        self._ids = IdGenerator()
        # Hook LIQO uses to forward pods bound to virtual nodes.
        self.offload_hooks: list[Callable[[Pod, Node], None]] = []
        if self.ctx is not None:
            metrics = self.ctx.metrics
            self._reconciles = metrics.counter(
                "kube.cluster.reconciles", "control-loop passes",
                label_key="cluster")
            self._pods_scheduled = metrics.counter(
                "kube.cluster.pods_scheduled", "pods bound to nodes",
                label_key="cluster")
            self._pod_evictions = metrics.counter(
                "kube.cluster.evictions", "pods evicted",
                label_key="cluster")
        else:
            self._reconciles = None
            self._pods_scheduled = None
            self._pod_evictions = None

    def _span(self, name: str, **attrs):
        """A kube-layer span, or a no-op when running bus-only."""
        if self.ctx is None:
            return null_span()
        return self.ctx.tracer.start_span(
            name, layer="kube", cluster=self.name, **attrs)

    # -- node lifecycle -----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValidationError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        self._emit("NodeAdded", node.name, f"capacity "
                   f"{node.capacity.cpu_millicores}m")
        return node

    def remove_node(self, name: str) -> None:
        """Remove a node, evicting everything scheduled on it."""
        if name not in self.nodes:
            raise NotFoundError(f"unknown node {name!r}")
        del self.nodes[name]
        for pod in self.pods.values():
            if pod.node_name == name and pod.phase in (
                    PodPhase.SCHEDULED, PodPhase.RUNNING):
                self._evict(pod, f"node {name} removed")

    def set_node_ready(self, name: str, ready: bool) -> None:
        """Mark a node (un)ready; unready nodes get their pods evicted."""
        node = self.node(name)
        node.ready = ready
        if not ready:
            for pod in self.pods.values():
                if pod.node_name == name and pod.phase in (
                        PodPhase.SCHEDULED, PodPhase.RUNNING):
                    self._evict(pod, f"node {name} not ready")

    def node(self, name: str) -> Node:
        if name not in self.nodes:
            raise NotFoundError(f"unknown node {name!r}")
        return self.nodes[name]

    def node_free(self, node: Node) -> ResourceRequest:
        """Capacity minus requests of pods placed on the node."""
        used = ResourceRequest(0, 0)
        for pod in self.pods.values():
            if pod.node_name == node.name and pod.phase in (
                    PodPhase.SCHEDULED, PodPhase.RUNNING):
                used = used + pod.spec.request
        return ResourceRequest(
            node.capacity.cpu_millicores - used.cpu_millicores,
            node.capacity.memory_bytes - used.memory_bytes,
        )

    # -- pod lifecycle --------------------------------------------------------------

    def create_pod(self, spec: PodSpec) -> Pod:
        """Submit a pod; it stays Pending until the next reconcile."""
        pod = Pod(spec=spec, uid=self._ids.next("pod"))
        if any(p.spec.name == spec.name and p.phase in (
                PodPhase.PENDING, PodPhase.SCHEDULED, PodPhase.RUNNING)
               for p in self.pods.values()):
            raise ValidationError(f"active pod named {spec.name!r} exists")
        self.pods[pod.uid] = pod
        self._emit("PodCreated", spec.name, "queued for scheduling")
        return pod

    def delete_pod(self, uid: str) -> None:
        if uid not in self.pods:
            raise NotFoundError(f"unknown pod uid {uid!r}")
        pod = self.pods.pop(uid)
        self._emit("PodDeleted", pod.name, f"was {pod.phase.value}")

    def pod_by_name(self, name: str) -> Pod:
        """Most recent active pod with the given spec name."""
        candidates = [p for p in self.pods.values() if p.spec.name == name]
        if not candidates:
            raise NotFoundError(f"no pod named {name!r}")
        return candidates[-1]

    def mark_running(self, uid: str) -> None:
        """Kubelet acknowledgement: scheduled pod started its containers."""
        pod = self.pods[uid]
        if pod.phase is not PodPhase.SCHEDULED:
            raise OrchestrationError(
                f"pod {pod.name} cannot run from phase {pod.phase.value}")
        pod.phase = PodPhase.RUNNING
        if self._bind_breakers is not None and pod.node_name is not None:
            breaker = self._bind_breakers.get(pod.node_name)
            if breaker is not None:
                breaker.record_success()

    def mark_finished(self, uid: str, succeeded: bool = True) -> None:
        """Terminal transition for batch pods."""
        pod = self.pods[uid]
        pod.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED

    # -- bind-path circuit breakers -----------------------------------------------

    def enable_bind_breakers(self, failure_threshold: int = 3,
                             recovery_time_s: float = 30.0) -> None:
        """Arm per-node circuit breakers on the bind/evict path.

        Every eviction records a failure against the pod's node; a node
        whose breaker trips is excluded from scheduling until the
        recovery window elapses, then probed half-open — the first pod
        that reaches RUNNING on it closes the breaker again.
        """
        if self.ctx is None:
            raise ConfigurationError(
                "enable_bind_breakers() needs a RuntimeContext-injected "
                "cluster (shared clock)")
        self._bind_breakers = {}
        self._breaker_params = (failure_threshold, recovery_time_s)

    def bind_breaker(self, node_name: str):
        """The (lazily created) circuit breaker guarding *node_name*."""
        if self._bind_breakers is None:
            raise ConfigurationError(
                "bind breakers not enabled; call enable_bind_breakers()")
        breaker = self._bind_breakers.get(node_name)
        if breaker is None:
            # Imported here: repro.chaos builds on kube, not vice versa.
            from repro.chaos.policies import CircuitBreaker
            threshold, recovery = self._breaker_params
            breaker = CircuitBreaker(
                ctx=self.ctx, failure_threshold=threshold,
                recovery_time_s=recovery,
                name=f"kube.{self.name}.{node_name}")
            self._bind_breakers[node_name] = breaker
        return breaker

    def _breaker_allows(self, node_name: str) -> bool:
        if self._bind_breakers is None:
            return True
        breaker = self._bind_breakers.get(node_name)
        return breaker is None or breaker.allow()

    def _evict(self, pod: Pod, reason: str) -> None:
        if self._bind_breakers is not None and pod.node_name is not None:
            self.bind_breaker(pod.node_name).record_failure()
        with self._span("kube.evict", pod=pod.spec.name, reason=reason):
            pod.phase = PodPhase.PENDING
            pod.node_name = None
            pod.restarts += 1
            pod.record(f"evicted: {reason}")
            self._emit("PodEvicted", pod.name, reason)
        if self._pod_evictions is not None:
            self._pod_evictions.inc(label=self.name)

    # -- deployments -------------------------------------------------------------------

    def create_deployment(self, deployment: Deployment) -> Deployment:
        if deployment.name in self.deployments:
            raise ValidationError(
                f"duplicate deployment {deployment.name!r}")
        self.deployments[deployment.name] = deployment
        return deployment

    def scale_deployment(self, name: str, replicas: int) -> None:
        if name not in self.deployments:
            raise NotFoundError(f"unknown deployment {name!r}")
        if replicas < 0:
            raise ValidationError("replica count must be non-negative")
        self.deployments[name].replicas = replicas

    def _deployment_pods(self, name: str) -> list[Pod]:
        return [p for p in self.pods.values()
                if p.spec.labels.get("deployment") == name
                and p.phase in (PodPhase.PENDING, PodPhase.SCHEDULED,
                                PodPhase.RUNNING)]

    def _reconcile_deployments(self) -> None:
        for deployment in self.deployments.values():
            alive = self._deployment_pods(deployment.name)
            missing = deployment.replicas - len(alive)
            for _ in range(missing):
                spec = PodSpec(
                    name=deployment.next_pod_name(),
                    request=deployment.template.request,
                    labels={**deployment.template.labels,
                            "deployment": deployment.name},
                    node_selector=dict(deployment.template.node_selector),
                    tolerations=list(deployment.template.tolerations),
                    min_security_level=deployment.template
                    .min_security_level,
                )
                self.create_pod(spec)
            for pod in alive[deployment.replicas:] if missing < 0 else []:
                self.delete_pod(pod.uid)

    # -- reconciliation loop ------------------------------------------------------------

    def reconcile(self) -> int:
        """One control-loop pass; returns the number of pods scheduled."""
        with self._span("kube.reconcile"):
            self._reconcile_deployments()
            scheduled = 0
            for pod in list(self.pods.values()):
                if pod.phase is not PodPhase.PENDING:
                    continue
                with self._span("kube.schedule", pod=pod.spec.name):
                    candidates = list(self.nodes.values())
                    if self._bind_breakers:
                        candidates = [n for n in candidates
                                      if self._breaker_allows(n.name)]
                    node, result = self.scheduler.select(
                        pod.spec, candidates, self.node_free)
                    if node is None:
                        pod.record(f"unschedulable: {result.rejections}")
                        self._emit(
                            "FailedScheduling", pod.name,
                            "; ".join(f"{k}: {v}" for k, v in
                                      sorted(result.rejections.items())))
                        continue
                    with self._span("kube.bind", pod=pod.spec.name,
                                    node=node.name):
                        pod.node_name = node.name
                        pod.phase = PodPhase.SCHEDULED
                        pod.record(f"bound to {node.name}")
                        self._emit("Scheduled", pod.name,
                                   f"bound to {node.name}")
                    scheduled += 1
                    if node.virtual:
                        for hook in self.offload_hooks:
                            hook(pod, node)
        if self._reconciles is not None:
            self._reconciles.inc(label=self.name)
            if scheduled:
                self._pods_scheduled.inc(scheduled, label=self.name)
        return scheduled

    # -- introspection -------------------------------------------------------------------

    def pods_in_phase(self, phase: PodPhase) -> list[Pod]:
        return [p for p in self.pods.values() if p.phase is phase]

    def utilization(self) -> dict[str, float]:
        """CPU allocation fraction per node."""
        out = {}
        for node in self.nodes.values():
            free = self.node_free(node)
            cap = max(1, node.capacity.cpu_millicores)
            out[node.name] = 1.0 - free.cpu_millicores / cap
        return out

    def watch_device_faults(self) -> None:
        """React to continuum fault events on the shared bus.

        A failed device whose name matches one of this cluster's nodes
        is marked unready (evicting its pods); a repair marks it ready
        again. This is the cross-layer glue that puts kube evictions on
        the same causal trace as the fault that caused them.
        """
        if self.ctx is None:
            raise ConfigurationError(
                "watch_device_faults() needs a RuntimeContext-injected "
                "cluster (shared bus)")

        def _on_fault(topic: str, payload) -> None:
            device = (payload or {}).get("device")
            if device in self.nodes:
                self.set_node_ready(device, topic.endswith(".repair"))

        self.ctx.subscribe("continuum.fault.*", _on_fault)

    def _emit(self, kind: str, obj: str, message: str) -> None:
        event = ClusterEvent(kind=kind, object_name=obj, message=message,
                             time_s=self.ctx.now if self.ctx else 0.0)
        self.events.append(event)
        self.bus.publish(f"kube.{self.name}.{kind}", event)
