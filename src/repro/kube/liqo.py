"""LIQO-style multi-cluster peering and transparent offloading.

The paper's continuum life-cycle control is "based on LIQO ... allows for
clustering and resource virtualization ... the interface among MIRTO
agents and Kubernetes-based orchestration achieving seamless
virtualization of the underlying infrastructure" (Sec. IV). This module
reproduces the LIQO abstraction MIRTO relies on: a peering reflects a
remote cluster into the local one as a single *virtual node* whose
capacity mirrors the remote free capacity; pods bound to the virtual
node are transparently re-created in the remote cluster, and their
status reflects back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import OrchestrationError, ValidationError
from repro.kube.cluster import KubeCluster
from repro.kube.objects import Node, Pod, PodPhase, PodSpec, ResourceRequest


@dataclass
class OffloadedPod:
    """Bookkeeping for one pod forwarded across a peering."""

    local_uid: str
    remote_uid: str
    peering_name: str


class Peering:
    """A unidirectional LIQO peering: *consumer* offloads to *provider*."""

    def __init__(self, consumer: KubeCluster, provider: KubeCluster,
                 name: str | None = None):
        if consumer is provider:
            raise ValidationError("a cluster cannot peer with itself")
        self.consumer = consumer
        self.provider = provider
        self.name = name or f"liqo-{provider.name}"
        self.virtual_node_name = self.name
        self.offloaded: list[OffloadedPod] = []
        self._install()

    def _install(self) -> None:
        if self.virtual_node_name in self.consumer.nodes:
            raise ValidationError(
                f"peering {self.name!r} already installed")
        virtual = Node(
            name=self.virtual_node_name,
            capacity=self._remote_free_capacity(),
            labels={"liqo.io/type": "virtual-node",
                    "security-level": self._remote_security_floor()},
            virtual=True,
            remote_cluster=self.provider.name,
        )
        self.consumer.add_node(virtual)
        self.consumer.offload_hooks.append(self._on_bind)

    def _remote_free_capacity(self) -> ResourceRequest:
        """Aggregate free capacity of all ready remote physical nodes."""
        cpu = 0
        mem = 0
        for node in self.provider.nodes.values():
            if node.ready and not node.virtual:
                free = self.provider.node_free(node)
                cpu += free.cpu_millicores
                mem += free.memory_bytes
        return ResourceRequest(cpu, mem)

    def _remote_security_floor(self) -> str:
        """The virtual node advertises the weakest remote security level,
        so a pod scheduled on it is safe on any remote node the provider
        may pick."""
        ranks = {"low": 0, "medium": 1, "high": 2}
        levels = [node.labels.get("security-level", "low")
                  for node in self.provider.nodes.values()
                  if node.ready and not node.virtual]
        if not levels:
            return "low"
        return min(levels, key=lambda lvl: ranks.get(lvl, 0))

    def refresh(self) -> None:
        """Re-advertise the remote free capacity on the virtual node."""
        node = self.consumer.node(self.virtual_node_name)
        node.capacity = self._remote_free_capacity()
        node.labels["security-level"] = self._remote_security_floor()

    # -- offloading -----------------------------------------------------------------

    def _on_bind(self, pod: Pod, node: Node) -> None:
        if node.name != self.virtual_node_name:
            return
        remote_spec = PodSpec(
            name=f"{self.consumer.name}-{pod.spec.name}",
            request=pod.spec.request,
            labels={**pod.spec.labels,
                    "liqo.io/origin": self.consumer.name},
            node_selector=dict(pod.spec.node_selector),
            tolerations=list(pod.spec.tolerations),
            min_security_level=pod.spec.min_security_level,
        )
        remote_pod = self.provider.create_pod(remote_spec)
        self.offloaded.append(OffloadedPod(
            local_uid=pod.uid,
            remote_uid=remote_pod.uid,
            peering_name=self.name,
        ))
        pod.record(f"offloaded to cluster {self.provider.name}")

    def reflect_status(self) -> None:
        """Propagate remote pod phases back to the local shadow pods."""
        for entry in list(self.offloaded):
            local = self.consumer.pods.get(entry.local_uid)
            remote = self.provider.pods.get(entry.remote_uid)
            if local is None:
                # Local pod deleted: clean up the remote copy.
                if remote is not None:
                    self.provider.delete_pod(remote.uid)
                self.offloaded.remove(entry)
                continue
            if remote is None:
                continue
            if remote.phase in (PodPhase.RUNNING, PodPhase.SUCCEEDED,
                                PodPhase.FAILED):
                local.phase = remote.phase

    def teardown(self) -> None:
        """Remove the peering: virtual node goes away, offloads return."""
        for entry in self.offloaded:
            remote = self.provider.pods.get(entry.remote_uid)
            if remote is not None:
                self.provider.delete_pod(remote.uid)
        self.offloaded.clear()
        if self.virtual_node_name in self.consumer.nodes:
            self.consumer.remove_node(self.virtual_node_name)
        if self._on_bind in self.consumer.offload_hooks:
            self.consumer.offload_hooks.remove(self._on_bind)


class ContinuumFederation:
    """All clusters of a MYRTUS deployment plus their peerings.

    Provides the "composable layered continuum": one cluster per
    layer/site, edge clusters peer upwards to fog, fog peers to cloud,
    yielding the vertical offload paths of Fig. 2.
    """

    def __init__(self):
        self.clusters: dict[str, KubeCluster] = {}
        self.peerings: list[Peering] = []

    def add_cluster(self, cluster: KubeCluster) -> KubeCluster:
        if cluster.name in self.clusters:
            raise ValidationError(f"duplicate cluster {cluster.name!r}")
        self.clusters[cluster.name] = cluster
        return cluster

    def peer(self, consumer: str, provider: str) -> Peering:
        """Create a peering between two registered clusters."""
        for name in (consumer, provider):
            if name not in self.clusters:
                raise OrchestrationError(f"unknown cluster {name!r}")
        peering = Peering(self.clusters[consumer], self.clusters[provider])
        self.peerings.append(peering)
        return peering

    def reconcile_all(self, rounds: int = 3) -> None:
        """Refresh peerings and reconcile every cluster a few times so
        offloaded pods get scheduled remotely and statuses reflect back."""
        for _ in range(rounds):
            for peering in self.peerings:
                peering.refresh()
            for cluster in self.clusters.values():
                cluster.reconcile()
            for peering in self.peerings:
                peering.reflect_status()

    def total_pods_running(self) -> int:
        return sum(len(c.pods_in_phase(PodPhase.RUNNING))
                   for c in self.clusters.values())
