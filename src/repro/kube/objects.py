"""Kubernetes-style API objects for the low-level orchestrator.

The paper uses Kubernetes as the low-level orchestrator on every layer
(Table I, Resource management row). This module defines the minimal
object model the reproduction needs: nodes with capacities/labels/taints
and pods with resource requests, selectors and security requirements.
Quantities use integer millicores and bytes, like real Kubernetes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import ValidationError


class PodPhase(str, Enum):
    PENDING = "Pending"
    SCHEDULED = "Scheduled"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass(frozen=True)
class ResourceRequest:
    """CPU (millicores) and memory (bytes) a pod asks for."""

    cpu_millicores: int
    memory_bytes: int

    def __post_init__(self):
        if self.cpu_millicores < 0 or self.memory_bytes < 0:
            raise ValidationError("resource requests must be non-negative")

    def __add__(self, other: "ResourceRequest") -> "ResourceRequest":
        return ResourceRequest(self.cpu_millicores + other.cpu_millicores,
                               self.memory_bytes + other.memory_bytes)

    def fits_within(self, capacity: "ResourceRequest") -> bool:
        return (self.cpu_millicores <= capacity.cpu_millicores
                and self.memory_bytes <= capacity.memory_bytes)


@dataclass(frozen=True)
class Taint:
    """Repels pods lacking a matching toleration."""

    key: str
    value: str
    effect: str = "NoSchedule"


@dataclass
class Node:
    """A schedulable member of a cluster (physical or LIQO-virtual)."""

    name: str
    capacity: ResourceRequest
    labels: dict[str, str] = field(default_factory=dict)
    taints: list[Taint] = field(default_factory=list)
    ready: bool = True
    virtual: bool = False  # True for LIQO-reflected remote clusters
    remote_cluster: str | None = None

    def __post_init__(self):
        if not self.name:
            raise ValidationError("node name must be non-empty")


@dataclass
class PodSpec:
    """Desired state of a pod."""

    name: str
    request: ResourceRequest
    labels: dict[str, str] = field(default_factory=dict)
    node_selector: dict[str, str] = field(default_factory=dict)
    tolerations: list[Taint] = field(default_factory=list)
    min_security_level: str = "low"
    duration_s: float | None = None  # None = long-running service

    def tolerates(self, taint: Taint) -> bool:
        return any(t.key == taint.key and t.value == taint.value
                   for t in self.tolerations)


@dataclass
class Pod:
    """Observed state of a pod instance."""

    spec: PodSpec
    uid: str
    phase: PodPhase = PodPhase.PENDING
    node_name: str | None = None
    restarts: int = 0
    messages: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    def record(self, message: str) -> None:
        self.messages.append(message)


@dataclass
class Deployment:
    """Keeps *replicas* copies of a pod template alive."""

    name: str
    template: PodSpec
    replicas: int
    _counter: itertools.count = field(default_factory=itertools.count)

    def __post_init__(self):
        if self.replicas < 0:
            raise ValidationError("replica count must be non-negative")

    def next_pod_name(self) -> str:
        return f"{self.name}-{next(self._counter)}"


def security_rank(level: str) -> int:
    """Ordering helper shared with the security package (low<medium<high)."""
    return {"low": 0, "medium": 1, "high": 2}.get(level, 0)
