"""The kube scheduler: filter (predicates) then score (priorities).

Follows the two-phase structure of the real kube-scheduler. Predicates
eliminate infeasible nodes (resource fit, selector match, taint
toleration, readiness, security capability); priorities rank the
feasible ones (least-allocated balancing, label affinity, a penalty for
LIQO virtual nodes so local capacity is preferred when equal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kube.objects import Node, PodSpec, ResourceRequest, security_rank


@dataclass
class FilterResult:
    """Outcome of the predicate phase, with per-node rejection reasons."""

    feasible: list[Node]
    rejections: dict[str, str]


Predicate = Callable[[PodSpec, Node, ResourceRequest], str | None]
Priority = Callable[[PodSpec, Node, ResourceRequest], float]


def predicate_node_ready(pod: PodSpec, node: Node,
                         free: ResourceRequest) -> str | None:
    if not node.ready:
        return "node not ready"
    return None


def predicate_resources_fit(pod: PodSpec, node: Node,
                            free: ResourceRequest) -> str | None:
    if not pod.request.fits_within(free):
        return (f"insufficient resources (free {free.cpu_millicores}m/"
                f"{free.memory_bytes}B)")
    return None


def predicate_node_selector(pod: PodSpec, node: Node,
                            free: ResourceRequest) -> str | None:
    for key, value in pod.node_selector.items():
        if node.labels.get(key) != value:
            return f"selector {key}={value} unmatched"
    return None


def predicate_taints(pod: PodSpec, node: Node,
                     free: ResourceRequest) -> str | None:
    for taint in node.taints:
        if taint.effect == "NoSchedule" and not pod.tolerates(taint):
            return f"untolerated taint {taint.key}={taint.value}"
    return None


def predicate_security_level(pod: PodSpec, node: Node,
                             free: ResourceRequest) -> str | None:
    node_level = node.labels.get("security-level", "low")
    if security_rank(node_level) < security_rank(pod.min_security_level):
        return (f"security level {node_level} below required "
                f"{pod.min_security_level}")
    return None


DEFAULT_PREDICATES: list[Predicate] = [
    predicate_node_ready,
    predicate_resources_fit,
    predicate_node_selector,
    predicate_taints,
    predicate_security_level,
]


def priority_least_allocated(pod: PodSpec, node: Node,
                             free: ResourceRequest) -> float:
    """Prefer nodes with the most free capacity after placement."""
    cpu_frac = ((free.cpu_millicores - pod.request.cpu_millicores)
                / max(1, node.capacity.cpu_millicores))
    mem_frac = ((free.memory_bytes - pod.request.memory_bytes)
                / max(1, node.capacity.memory_bytes))
    return (cpu_frac + mem_frac) / 2


def priority_label_affinity(pod: PodSpec, node: Node,
                            free: ResourceRequest) -> float:
    """Small bonus per pod label the node shares (e.g. accelerator type)."""
    shared = sum(1 for k, v in pod.labels.items()
                 if node.labels.get(k) == v)
    return 0.1 * shared


def priority_prefer_local(pod: PodSpec, node: Node,
                          free: ResourceRequest) -> float:
    """Penalize LIQO virtual nodes so offloading needs a capacity reason."""
    return -0.25 if node.virtual else 0.0


DEFAULT_PRIORITIES: list[Priority] = [
    priority_least_allocated,
    priority_label_affinity,
    priority_prefer_local,
]


class Scheduler:
    """Pluggable filter-and-score scheduler."""

    def __init__(self, predicates: list[Predicate] | None = None,
                 priorities: list[Priority] | None = None):
        self.predicates = list(predicates or DEFAULT_PREDICATES)
        self.priorities = list(priorities or DEFAULT_PRIORITIES)

    def filter(self, pod: PodSpec, nodes: list[Node],
               free_fn: Callable[[Node], ResourceRequest]) -> FilterResult:
        """Apply every predicate; collect rejection reasons."""
        feasible = []
        rejections = {}
        for node in nodes:
            free = free_fn(node)
            reason = None
            for predicate in self.predicates:
                reason = predicate(pod, node, free)
                if reason is not None:
                    break
            if reason is None:
                feasible.append(node)
            else:
                rejections[node.name] = reason
        return FilterResult(feasible=feasible, rejections=rejections)

    def score(self, pod: PodSpec, node: Node,
              free: ResourceRequest) -> float:
        """Sum of all priority functions."""
        return sum(priority(pod, node, free)
                   for priority in self.priorities)

    def select(self, pod: PodSpec, nodes: list[Node],
               free_fn: Callable[[Node], ResourceRequest]
               ) -> tuple[Node | None, FilterResult]:
        """Pick the best feasible node (None when none fits)."""
        result = self.filter(pod, nodes, free_fn)
        if not result.feasible:
            return None, result
        best = max(
            result.feasible,
            key=lambda n: (self.score(pod, n, free_fn(n)), n.name),
        )
        return best, result
