"""Mini-Kubernetes: the continuum's low-level orchestrator.

The paper uses Kubernetes on every layer (Table I) with LIQO providing
multi-cluster virtualization (Sec. IV). This package reproduces the
abstractions the MIRTO Cognitive Engine depends on: the object model
(:mod:`repro.kube.objects`), a filter-and-score scheduler
(:mod:`repro.kube.scheduler`), the per-cluster control plane
(:mod:`repro.kube.cluster`) and LIQO-style peering/offloading
(:mod:`repro.kube.liqo`).
"""

from repro.kube.objects import (
    Deployment,
    Node,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequest,
    Taint,
)
from repro.kube.scheduler import (
    FilterResult,
    Scheduler,
    DEFAULT_PREDICATES,
    DEFAULT_PRIORITIES,
)
from repro.kube.cluster import ClusterEvent, KubeCluster
from repro.kube.liqo import ContinuumFederation, OffloadedPod, Peering
from repro.kube.autoscaler import HorizontalAutoscaler, ScalingEvent

__all__ = [
    "Deployment",
    "Node",
    "Pod",
    "PodPhase",
    "PodSpec",
    "ResourceRequest",
    "Taint",
    "FilterResult",
    "Scheduler",
    "DEFAULT_PREDICATES",
    "DEFAULT_PRIORITIES",
    "ClusterEvent",
    "KubeCluster",
    "ContinuumFederation",
    "OffloadedPod",
    "Peering",
    "HorizontalAutoscaler",
    "ScalingEvent",
]
