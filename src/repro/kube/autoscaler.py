"""Horizontal autoscaling for deployments (the elasticity half of
Table I's "handling scalability without compromising QoS").

A :class:`HorizontalAutoscaler` watches a metric (deployment-average
utilization, supplied by a callback so any monitor can feed it) and
resizes the deployment towards ``replicas = ceil(current * metric /
target)`` — the kube-HPA control law — bounded by min/max replicas and a
stabilization window that prevents flapping on noisy metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ConfigurationError, NotFoundError
from repro.kube.cluster import KubeCluster


@dataclass
class ScalingEvent:
    """One executed scaling decision."""

    tick: int
    from_replicas: int
    to_replicas: int
    metric: float


class HorizontalAutoscaler:
    """kube-HPA-style closed-loop replica controller."""

    def __init__(self, cluster: KubeCluster, deployment: str,
                 metric_fn: Callable[[], float],
                 target: float = 0.6, min_replicas: int = 1,
                 max_replicas: int = 10,
                 stabilization_ticks: int = 3,
                 tolerance: float = 0.1):
        if deployment not in cluster.deployments:
            raise NotFoundError(f"unknown deployment {deployment!r}")
        if not 0 < target:
            raise ConfigurationError("target metric must be positive")
        if min_replicas < 0 or max_replicas < min_replicas:
            raise ConfigurationError("bad replica bounds")
        self.cluster = cluster
        self.deployment = deployment
        self.metric_fn = metric_fn
        self.target = target
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.stabilization_ticks = stabilization_ticks
        self.tolerance = tolerance
        self.events: list[ScalingEvent] = []
        self._tick = 0
        self._last_scale_tick = -stabilization_ticks

    def desired_replicas(self, metric: float, current: int) -> int:
        """The HPA control law, with tolerance band and bounds."""
        if current == 0:
            return self.min_replicas
        ratio = metric / self.target
        if abs(ratio - 1.0) <= self.tolerance:
            return current  # within tolerance: no change
        desired = math.ceil(current * ratio)
        return max(self.min_replicas, min(self.max_replicas, desired))

    def tick(self) -> ScalingEvent | None:
        """One control-loop pass; returns the event if scaling happened."""
        self._tick += 1
        metric = self.metric_fn()
        current = self.cluster.deployments[self.deployment].replicas
        desired = self.desired_replicas(metric, current)
        if desired == current:
            return None
        if desired < current and \
                self._tick - self._last_scale_tick \
                < self.stabilization_ticks:
            return None  # scale-down needs a quiet window
        self.cluster.scale_deployment(self.deployment, desired)
        self.cluster.reconcile()
        self._last_scale_tick = self._tick
        event = ScalingEvent(tick=self._tick, from_replicas=current,
                             to_replicas=desired, metric=metric)
        self.events.append(event)
        return event
