"""Protocol adapters: HTTP, MQTT and CoAP framing.

The paper (Sec. III, Network) requires edge components to speak standard
protocols — the HMPSoC accelerators exchange JSON over HTTP with the
smart gateway; gateways and FMDCs additionally speak MQTT and CoAP. Each
adapter models the wire overhead and handshake round-trips of its
protocol and performs real JSON (de)serialization of payloads, so the
byte counts fed to the network model are honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ValidationError


@dataclass(frozen=True)
class Message:
    """An application-level message between two components."""

    src: str
    dst: str
    topic: str
    payload: dict[str, Any]

    def encode(self) -> bytes:
        """Serialize the payload to canonical JSON bytes."""
        return json.dumps(self.payload, sort_keys=True,
                          separators=(",", ":")).encode()


class ProtocolAdapter:
    """Base protocol adapter: framing overhead + handshake accounting."""

    name = "abstract"
    header_bytes = 0
    handshake_round_trips = 0

    def frame(self, message: Message) -> bytes:
        """Produce the wire representation of *message*."""
        body = message.encode()
        header = self._header(message, len(body))
        return header + body

    def unframe(self, wire: bytes) -> dict[str, Any]:
        """Recover the payload dict from wire bytes."""
        idx = wire.find(b"\r\n\r\n")
        if idx < 0:
            raise ValidationError(f"{self.name}: malformed frame")
        return json.loads(wire[idx + 4:])

    def wire_bytes(self, message: Message) -> int:
        """Total bytes the frame occupies on the wire."""
        return len(self.frame(message))

    def handshake_latency(self, rtt_s: float) -> float:
        """Connection-establishment time given a path round-trip time."""
        return self.handshake_round_trips * rtt_s

    def _header(self, message: Message, body_len: int) -> bytes:
        raise NotImplementedError


class HttpAdapter(ProtocolAdapter):
    """HTTP/1.1 POST framing (the HMPSoC-to-gateway scheme)."""

    name = "http"
    handshake_round_trips = 2  # TCP + TLS-less request/response setup

    def _header(self, message: Message, body_len: int) -> bytes:
        return (
            f"POST /{message.topic} HTTP/1.1\r\n"
            f"Host: {message.dst}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {body_len}\r\n"
            f"X-Source: {message.src}\r\n"
            "\r\n"
        ).encode()


class MqttAdapter(ProtocolAdapter):
    """MQTT PUBLISH framing (gateway pub/sub scheme)."""

    name = "mqtt"
    handshake_round_trips = 1  # CONNECT/CONNACK

    def _header(self, message: Message, body_len: int) -> bytes:
        # Modelled fixed+variable header; terminated like HTTP so a single
        # unframe() implementation serves every adapter.
        return (
            f"PUBLISH topic={message.topic} qos=1 len={body_len}\r\n\r\n"
        ).encode()


class CoapAdapter(ProtocolAdapter):
    """CoAP confirmable-message framing (constrained edge devices)."""

    name = "coap"
    handshake_round_trips = 0  # UDP, no connection setup

    def _header(self, message: Message, body_len: int) -> bytes:
        return (
            f"CON POST /{message.topic} mid=0 len={body_len}\r\n\r\n"
        ).encode()


PROTOCOLS: dict[str, ProtocolAdapter] = {
    "http": HttpAdapter(),
    "mqtt": MqttAdapter(),
    "coap": CoapAdapter(),
}


def negotiate(offered: list[str], supported: list[str]) -> ProtocolAdapter:
    """Pick the first mutually supported protocol, in *offered* order."""
    for name in offered:
        if name in supported and name in PROTOCOLS:
            return PROTOCOLS[name]
    raise ValidationError(
        f"no common protocol between offered={offered} and "
        f"supported={supported}"
    )
