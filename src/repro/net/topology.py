"""Network topology and message-transfer model.

The topology is an undirected graph (networkx) of named hosts connected
by :class:`Link`s with latency and bandwidth. Transfers follow the
lowest-latency path; per-link bandwidth is shared fairly among concurrent
flows, approximated by sampling the number of active flows when the
transfer starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import ConfigurationError, NotFoundError
from repro.continuum.simulator import Simulator
from repro.runtime import RuntimeContext


@dataclass
class Link:
    """A bidirectional network link.

    ``latency_factor`` / ``bandwidth_factor`` model chaos-injected
    degradation (inflated latency, throttled bandwidth) without losing
    the link's nominal parameters; ``up=False`` cuts the link entirely
    (partitions). All three are mutated through
    :meth:`Network.set_link_state` so path caches invalidate.
    """

    a: str
    b: str
    latency_s: float
    bandwidth_bps: float
    active_flows: int = 0
    bytes_carried: int = 0
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    up: bool = True

    def __post_init__(self):
        if self.latency_s < 0:
            raise ConfigurationError("link latency must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("link bandwidth must be positive")

    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying this link."""
        return tuple(sorted((self.a, self.b)))  # type: ignore[return-value]

    def effective_latency(self) -> float:
        """Propagation latency including chaos-injected inflation."""
        return self.latency_s * self.latency_factor

    def effective_bandwidth(self) -> float:
        """Bandwidth share for a new flow given current contention."""
        return (self.bandwidth_bps * self.bandwidth_factor
                / max(1, self.active_flows + 1))


@dataclass
class TransferResult:
    """Outcome of one message transfer."""

    src: str
    dst: str
    payload_bytes: int
    wire_bytes: int
    start_s: float
    end_s: float
    hops: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Network:
    """The continuum's communication fabric."""

    def __init__(self, *, ctx: RuntimeContext | Simulator | None = None):
        self.ctx = RuntimeContext.adopt(ctx)
        self.sim = self.ctx.sim
        self.graph = nx.Graph()
        self._links: dict[tuple[str, str], Link] = {}
        self.transfers: list[TransferResult] = []
        #: Monotone counter of topology changes; cost caches key on it.
        self._generation = 0
        # Shortest paths are stable between topology changes; caching
        # them keeps nx.shortest_path out of the transfer hot path.
        self._path_cache: dict[tuple[str, str], list[Link]] = {}
        self._route_cache: dict[tuple[str, str], tuple[float, float]] = {}

    @property
    def generation(self) -> int:
        """Bumped on every link addition or state change (path caches
        invalidate on it)."""
        return self._generation

    # -- construction ------------------------------------------------------------

    def add_host(self, name: str, layer: str = "unknown") -> None:
        """Register a host. Re-adding an existing host is a no-op."""
        if name not in self.graph:
            self.graph.add_node(name, layer=layer)

    def add_link(self, a: str, b: str, latency_s: float,
                 bandwidth_bps: float) -> Link:
        """Connect hosts *a* and *b* (hosts are auto-registered)."""
        if a == b:
            raise ConfigurationError("self-links are not allowed")
        self.add_host(a)
        self.add_host(b)
        link = Link(a, b, latency_s, bandwidth_bps)
        self._links[link.key()] = link
        self.graph.add_edge(a, b, latency=latency_s)
        self._generation += 1
        self._path_cache.clear()
        self._route_cache.clear()
        return link

    def set_link_state(self, a: str, b: str, *, up: bool | None = None,
                       latency_factor: float | None = None,
                       bandwidth_factor: float | None = None) -> Link:
        """Mutate a link's chaos state (cut, degrade, restore).

        The single mutation point for partitions and degradations: it
        keeps the routing graph in sync (a down link is removed from
        the graph; an up link's edge weight is its *effective* latency),
        bumps the topology generation and clears the path caches.
        """
        link = self.link(a, b)
        if latency_factor is not None:
            if latency_factor <= 0:
                raise ConfigurationError("latency factor must be positive")
            link.latency_factor = latency_factor
        if bandwidth_factor is not None:
            if bandwidth_factor <= 0:
                raise ConfigurationError("bandwidth factor must be positive")
            link.bandwidth_factor = bandwidth_factor
        if up is not None:
            link.up = up
        if link.up:
            self.graph.add_edge(link.a, link.b,
                                latency=link.effective_latency())
        elif self.graph.has_edge(link.a, link.b):
            self.graph.remove_edge(link.a, link.b)
        self._generation += 1
        self._path_cache.clear()
        self._route_cache.clear()
        self.ctx.publish("net.link.state", {
            "a": link.a, "b": link.b, "up": link.up,
            "latency_factor": link.latency_factor,
            "bandwidth_factor": link.bandwidth_factor})
        return link

    def link(self, a: str, b: str) -> Link:
        """The link between *a* and *b* (order-insensitive)."""
        key = tuple(sorted((a, b)))
        if key not in self._links:
            raise NotFoundError(f"no link between {a!r} and {b!r}")
        return self._links[key]  # type: ignore[index]

    @property
    def links(self) -> list[Link]:
        """All links in the topology."""
        return list(self._links.values())

    # -- path queries -----------------------------------------------------------------

    def path(self, src: str, dst: str) -> list[str]:
        """Lowest-latency host path from *src* to *dst* (inclusive)."""
        for host in (src, dst):
            if host not in self.graph:
                raise NotFoundError(f"unknown host {host!r}")
        try:
            return nx.shortest_path(self.graph, src, dst, weight="latency")
        except nx.NetworkXNoPath as exc:
            raise NotFoundError(f"no path from {src!r} to {dst!r}") from exc

    def path_links(self, src: str, dst: str) -> list[Link]:
        """Links along the lowest-latency path (cached per topology)."""
        key = (src, dst)
        links = self._path_cache.get(key)
        if links is None:
            hosts = self.path(src, dst)
            links = [self.link(a, b) for a, b in zip(hosts, hosts[1:])]
            self._path_cache[key] = links
        return links

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of effective propagation latencies along the path."""
        return sum(link.effective_latency()
                   for link in self.path_links(src, dst))

    def estimate_transfer_time(self, src: str, dst: str,  # perf: hot
                               nbytes: int) -> float:
        """Predicted uncontended transfer time for *nbytes*."""
        if src == dst:
            return 0.0
        route = self._route_cache.get((src, dst))
        if route is None:
            links = self.path_links(src, dst)
            latency = 0.0
            bottleneck = links[0].bandwidth_bps * links[0].bandwidth_factor
            for link in links:
                latency += link.latency_s * link.latency_factor
                bandwidth = link.bandwidth_bps * link.bandwidth_factor
                if bandwidth < bottleneck:
                    bottleneck = bandwidth
            route = (latency, bottleneck)
            self._route_cache[(src, dst)] = route
        return route[0] + nbytes * 8 / route[1]

    # -- simulated transfer ----------------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: int,
                 wire_overhead: int = 0):
        """DES process: move *nbytes* (+framing overhead) from src to dst.

        Bandwidth is the bottleneck link's fair share at flow start; the
        process's value is a :class:`TransferResult`.
        """
        wire_bytes = nbytes + wire_overhead
        start = self.sim.now
        if src == dst:
            result = TransferResult(src, dst, nbytes, wire_bytes,
                                    start, start, hops=0)
            self.transfers.append(result)
            return result
            yield  # pragma: no cover - makes this a generator in both paths
        links = self.path_links(src, dst)
        latency = sum(link.effective_latency() for link in links)
        share = min(link.effective_bandwidth() for link in links)
        for link in links:
            link.active_flows += 1
            link.bytes_carried += wire_bytes
        try:
            yield self.sim.timeout(latency + wire_bytes * 8 / share)
        finally:
            for link in links:
                link.active_flows -= 1
        result = TransferResult(src, dst, nbytes, wire_bytes, start,
                                self.sim.now, hops=len(links))
        self.transfers.append(result)
        return result

    # -- telemetry -------------------------------------------------------------------

    def utilization_report(self) -> dict[tuple[str, str], int]:
        """Bytes carried per link since construction."""
        return {key: link.bytes_carried for key, link in self._links.items()}

    def congestion_hotspots(self, top: int = 5) -> list[Link]:
        """Links ranked by bytes carried, busiest first."""
        return sorted(self.links, key=lambda l: l.bytes_carried,
                      reverse=True)[:top]
