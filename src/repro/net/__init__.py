"""Network substrate: topology, links, message transfer, protocols, slicing.

Implements the EU-CEI *Network* building block for the simulated
continuum: a latency/bandwidth-annotated topology over which components
exchange protocol-framed messages, plus network slicing for reserved
capacity (paper Table I, Network row).
"""

from repro.net.topology import Link, Network, TransferResult
from repro.net.protocols import (
    Message,
    ProtocolAdapter,
    HttpAdapter,
    MqttAdapter,
    CoapAdapter,
    PROTOCOLS,
)
from repro.net.slicing import NetworkSlice, SliceManager

__all__ = [
    "Link",
    "Network",
    "TransferResult",
    "Message",
    "ProtocolAdapter",
    "HttpAdapter",
    "MqttAdapter",
    "CoapAdapter",
    "PROTOCOLS",
    "NetworkSlice",
    "SliceManager",
]
