"""Network slicing: reserved bandwidth shares for tenants.

Table I (Network row) names network slicing among the connectivity
activities. A :class:`NetworkSlice` reserves a fraction of capacity on
each link along a path; the :class:`SliceManager` enforces that reserved
fractions never exceed 100% per link and computes the bandwidth actually
available to a slice or to best-effort traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CapacityError, NotFoundError
from repro.net.topology import Network


@dataclass
class NetworkSlice:
    """A reservation of *fraction* of link capacity along *path_links*."""

    name: str
    tenant: str
    fraction: float
    path_links: list[tuple[str, str]]

    def __post_init__(self):
        if not 0 < self.fraction <= 1:
            raise CapacityError(
                f"slice {self.name}: fraction must be in (0, 1]"
            )


class SliceManager:
    """Creates, tracks and releases network slices on a topology."""

    def __init__(self, network: Network):
        self.network = network
        self.slices: dict[str, NetworkSlice] = {}
        # Reserved fraction per link key.
        self._reserved: dict[tuple[str, str], float] = {}

    def reserved_fraction(self, a: str, b: str) -> float:
        """Total fraction of the (a, b) link currently reserved."""
        return self._reserved.get(tuple(sorted((a, b))), 0.0)

    def create_slice(self, name: str, tenant: str, src: str, dst: str,
                     fraction: float) -> NetworkSlice:
        """Reserve *fraction* of every link on the src->dst path.

        Raises :class:`CapacityError` when any link lacks headroom; in
        that case nothing is reserved (all-or-nothing admission).
        """
        if name in self.slices:
            raise CapacityError(f"slice name {name!r} already in use")
        links = self.network.path_links(src, dst)
        keys = [link.key() for link in links]
        for key in keys:
            if self._reserved.get(key, 0.0) + fraction > 1.0 + 1e-9:
                raise CapacityError(
                    f"slice {name}: link {key} has only "
                    f"{1.0 - self._reserved.get(key, 0.0):.0%} free"
                )
        for key in keys:
            self._reserved[key] = self._reserved.get(key, 0.0) + fraction
        net_slice = NetworkSlice(name, tenant, fraction, keys)
        self.slices[name] = net_slice
        return net_slice

    def release_slice(self, name: str) -> None:
        """Release a slice's reservations."""
        if name not in self.slices:
            raise NotFoundError(f"unknown slice {name!r}")
        net_slice = self.slices.pop(name)
        for key in net_slice.path_links:
            self._reserved[key] = max(
                0.0, self._reserved.get(key, 0.0) - net_slice.fraction
            )

    def slice_bandwidth(self, name: str) -> float:
        """Guaranteed end-to-end bandwidth of slice *name* (bottleneck)."""
        if name not in self.slices:
            raise NotFoundError(f"unknown slice {name!r}")
        net_slice = self.slices[name]
        bandwidths = []
        for a, b in net_slice.path_links:
            link = self.network.link(a, b)
            bandwidths.append(link.bandwidth_bps * net_slice.fraction)
        return min(bandwidths) if bandwidths else 0.0

    def best_effort_bandwidth(self, a: str, b: str) -> float:
        """Capacity left for unreserved traffic on the (a, b) link."""
        link = self.network.link(a, b)
        return link.bandwidth_bps * (1.0 - self.reserved_fraction(a, b))
