"""Structured trace recording for cross-layer observability.

Every publish on a :class:`~repro.runtime.context.RuntimeContext` bus is
stamped with the canonical simulated time and appended here, so one
causally ordered record stream covers device faults, kube control-plane
transitions, MAPE phases and monitor samples alike. The recorder is a
bounded ring buffer (old records fall off the front) and exports JSONL
whose byte content is deterministic for a given seed — the substrate of
the deterministic-replay guarantee.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from enum import Enum
from pathlib import Path
from typing import Any, Iterator

from repro.core.errors import ConfigurationError
from repro.core.events import topic_matches


# Exact types the fast path passes through untouched. Subclasses (bool
# aside — it IS one of these) deliberately miss: an IntEnum or numpy
# scalar must take the slow path so its normalization stays identical
# to the pre-fast-path behavior.
_PRIMITIVES = (str, int, float, bool)


def jsonify(value: Any) -> Any:  # perf: hot
    """Reduce *value* to deterministic JSON-serializable primitives.

    Dataclasses become field dicts, enums their values, sets sorted
    lists. Objects with no stable representation collapse to a type
    marker rather than a ``repr`` (which may embed memory addresses and
    would break byte-identical trace exports).

    The overwhelming majority of trace payloads are None, a primitive,
    or a flat dict of primitives; those shapes are handled inline here
    without recursing.
    """
    if value is None or type(value) in _PRIMITIVES:
        return value
    if type(value) is dict:
        out = {}
        for k, v in value.items():
            if type(k) is not str:
                k = str(k)
            if v is None or type(v) in _PRIMITIVES:
                out[k] = v
            else:
                out[k] = _jsonify_slow(v)
        return out
    return _jsonify_slow(value)


def _jsonify_slow(value: Any) -> Any:
    """Full structural normalization (the original jsonify semantics)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Enum):
        return jsonify(value.value)
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonify(v) for v in value),
                      key=lambda v: json.dumps(v, sort_keys=True))
    if isinstance(value, bytes):
        return value.hex()
    return f"<{type(value).__name__}>"


class TraceRecord:
    """One time-stamped, topic-tagged observation.

    The payload is normalized (:func:`jsonify`) when the record is
    created — deferring that would let callers mutate a recorded dict
    after the fact and break byte-identical replay — but serialization
    to JSON text stays lazy: :meth:`to_json` renders on demand, so
    recording costs no string formatting unless the trace is exported.

    A plain ``__slots__`` class rather than a (frozen) dataclass: one
    is constructed per bus publish and per finished span, and the
    frozen-dataclass ``object.__setattr__`` init costs ~3x a direct
    attribute store. Treat instances as immutable all the same.
    """

    __slots__ = ("seq", "time_s", "topic", "payload", "span")

    def __init__(self, seq: int, time_s: float, topic: str,
                 payload: Any = None, span: Any = None):
        self.seq = seq
        self.time_s = time_s
        self.topic = topic
        self.payload = payload
        #: Span envelope ({trace_id, span_id, parent_id}) when the
        #: record was made under an active causal span; None otherwise.
        #: Stored as the span's prebuilt dict — already JSON-primitive,
        #: never mutated.
        self.span = span

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.seq == other.seq and self.time_s == other.time_s
                and self.topic == other.topic
                and self.payload == other.payload
                and self.span == other.span)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceRecord(seq={self.seq}, time_s={self.time_s!r}, "
                f"topic={self.topic!r}, payload={self.payload!r}, "
                f"span={self.span!r})")

    def to_json(self) -> str:
        obj = {"seq": self.seq, "time_s": self.time_s, "topic": self.topic,
               "payload": self.payload}
        if self.span is not None:
            obj["span"] = self.span
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceRecord` with JSONL export."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigurationError("trace capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, time_s: float, topic: str,  # perf: hot
               payload: Any = None, span: Any = None) -> TraceRecord:
        """Append one record; payload is normalized via :func:`jsonify`.

        The sequence number grows without bound and never wraps: Python
        integers are arbitrary-precision, so ``seq`` stays strictly
        increasing for the life of the recorder even after the ring has
        evicted billions of records. Consumers may rely on ``seq`` as a
        total order over everything ever recorded; use
        :attr:`dropped_count` to detect that the *retained* window no
        longer starts at seq 0.
        """
        rec = TraceRecord(self._seq, float(time_s), topic,
                          jsonify(payload), span)
        self._seq += 1
        self._records.append(rec)
        return rec

    def record_raw(self, time_s: float, topic: str,  # perf: hot
                   payload: Any = None, span: Any = None) -> TraceRecord:
        """Append a record whose *payload* is already JSON-primitive.

        Skips :func:`jsonify`: the caller guarantees the payload is
        composed only of primitives and dicts/lists of primitives and
        is never mutated afterwards, so exports are byte-identical to
        the :meth:`record` path. Exists for per-message hot paths (the
        cross-shard relay span) where the normalization walk costs more
        than the append."""
        rec = TraceRecord(self._seq, float(time_s), topic, payload, span)
        self._seq += 1
        self._records.append(rec)
        return rec

    @property
    def total_recorded(self) -> int:
        """Records ever appended (including any that fell off the ring)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return self._seq - len(self._records)

    @property
    def dropped_count(self) -> int:
        """Ring-buffer evictions so far (alias of :attr:`dropped`).

        ``total_recorded - len(recorder)``: how many records fell off
        the front of the bounded ring. When this is non-zero the
        retained trace starts at ``seq == dropped_count``, not 0.
        """
        return self._seq - len(self._records)

    def records(self, topic_pattern: str | None = None,
                since_s: float | None = None) -> list[TraceRecord]:
        """Retained records, optionally filtered by topic pattern/time.

        *topic_pattern* uses the event-bus wildcard syntax (``*`` one
        segment, ``**`` any remainder).
        """
        out = []
        for rec in self._records:
            if since_s is not None and rec.time_s < since_s:
                continue
            if topic_pattern is not None and \
                    not topic_matches(topic_pattern, rec.topic):
                continue
            out.append(rec)
        return out

    def at_time(self, time_s: float, tolerance: float = 0.0
                ) -> list[TraceRecord]:
        """Records stamped at *time_s* (within *tolerance*)."""
        return [r for r in self._records
                if abs(r.time_s - time_s) <= tolerance]

    def to_jsonl(self) -> str:
        """The retained trace as a JSONL string (deterministic bytes)."""
        return "\n".join(rec.to_json() for rec in self._records)

    def export_jsonl(self, path: str | Path) -> int:
        """Write the retained trace to *path*; returns records written."""
        text = self.to_jsonl()
        Path(path).write_text(text + ("\n" if text else ""))
        return len(self._records)

    def clear(self) -> None:
        """Drop retained records (the sequence counter keeps advancing)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)
