"""Worker-process side of the multiprocess shard backend.

One worker process hosts one shard: a single
:class:`~repro.continuum.simulator.Simulator` heap shared by a
contiguous rank-block of zones, each with its own
:class:`~repro.runtime.context.RuntimeContext` — exactly the layout a
sequential :class:`~repro.runtime.shard.ShardedContext` gives a shard.
The worker speaks a small message protocol over a duplex pipe with the
coordinator (:class:`~repro.runtime.parallel.ParallelShardedContext`):

``("advance", t_next, taps)``
    install coordinator-directed relay taps (derived from the previous
    barrier's post-flush pattern reports — the sequential backend also
    refreshes taps after the flush, and nothing publishes between a
    flush and the next epoch, so the capture set is identical), run the
    heap to the epoch boundary, reply ``("barrier", remote_outboxes,
    trace_batches, stats)``. Outboxes destined for zones on *other*
    workers are shipped as value snapshots; locally-destined buffers
    stay in place for the flush.
``("flush", epoch, t_barrier, remote_in, record_barrier)``
    barrier injection for the worker's local zones — source batches
    merged from local buffers and coordinator-routed remote batches in
    *global* rank order, messages in send order — then reply
    ``("flushed", pattern_report, metrics_report, stats)`` so
    subscriptions added during the epoch *or* by flush-time record
    handlers reach the coordinator's relay model before the next epoch
    runs, and per-zone metric deltas keep the coordinator's replica
    payloads current (deterministic aggregation — see
    ``ShardedContext.aggregate_metrics``).
``("sync",)`` / ``("finalize",)`` / ``("close",)``
    drain remaining trace records (plus stats and metric deltas); run
    the zone finalizers and return their results; exit.

Determinism: the worker reuses the *same* tap/delivery/injection
primitives as the sequential backend (``make_relay_tap``,
``flush_zone_inbox`` — single implementation, see
:mod:`repro.runtime.shard`), the zone seed subtree hangs off the zone
name, and tap installation order only perturbs bus bookkeeping, never
delivery order. Any exception is wrapped as ``("error", traceback)`` so
the coordinator raises instead of deadlocking on a silent barrier.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.rng import derive_seed
from repro.obs.metrics import payload_delta
from repro.obs.profiler import ShardProfiler
from repro.runtime.context import RuntimeContext
from repro.runtime.shard import (
    PARTITION_TOPIC,
    ZoneRuntime,
    flush_zone_inbox,
    make_relay_tap,
)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its shard of the scenario.

    ``builder``/``finalizer`` must be module-level callables (picklable
    under the ``spawn`` start method; under ``fork`` any callable
    works). ``zones`` lists *all* zone names in rank order so the worker
    can iterate sources in global rank order at flush time;
    ``local_ranks`` selects the contiguous block this worker hosts.
    """

    worker_id: int
    seed: int
    zones: tuple[str, ...]
    local_ranks: tuple[int, ...]
    start_time: float
    trace_capacity: int
    link_latency_s: float | None
    epoch_payload: float | None
    lookahead_payload: float | None
    builder: Callable[[RuntimeContext, str, Any], Any] | None
    builder_args: Any
    finalizer: Callable[[Any, str, Any], Any] | None


class ShardWorkerHost:
    """In-process shard host: builds the zones, owns the relay state.

    Also used directly (no subprocess) by ``workers=1`` parallel runs
    under test — the protocol handlers are plain methods.
    """

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        # runtime/ is the allowlisted home for direct Simulator
        # construction (continuum-lint).
        from repro.continuum.simulator import Simulator
        self.sim = Simulator(spec.start_time)
        self.zones: list[ZoneRuntime] = []
        self.by_rank: dict[int, ZoneRuntime] = {}
        self._local = set(spec.local_ranks)
        for rank in spec.local_ranks:
            name = spec.zones[rank]
            ctx = RuntimeContext(
                seed=derive_seed(spec.seed, f"shard.zone.{name}"),
                start_time=spec.start_time,
                trace_capacity=spec.trace_capacity, sim=self.sim)
            zone = ZoneRuntime(name, rank, spec.worker_id, ctx)
            self.zones.append(zone)
            self.by_rank[rank] = zone
            zone.ctx.publish(PARTITION_TOPIC, {
                "zone": name, "rank": rank,
                "epoch_s": spec.epoch_payload,
                "lookahead_s": spec.lookahead_payload,
                "time_s": spec.start_time})
        self.state: dict[int, Any] = {}
        if spec.builder is not None:
            for zone in self.zones:
                self.state[zone.rank] = spec.builder(
                    zone.ctx, zone.name, spec.builder_args)
        # Relay plumbing, same shape as the sequential backend: one
        # outbox/mark per (src, dest) pair, tap closures per refresh
        # round. Tap subscriptions are tracked so organic pattern
        # reports exclude them (the coordinator models tap-pattern
        # propagation itself).
        self._outbox: dict[tuple[int, int], list] = {}
        self._marks: dict[tuple[int, int], list[int]] = {}
        self._tap_subs: dict[int, set] = {z.rank: set() for z in self.zones}
        self._order_reported: dict[int, int] = \
            {z.rank: -1 for z in self.zones}
        self._injected = 0
        # Metrics piggybacking: the last payload snapshot shipped per
        # zone, so each reply carries only the entries that changed.
        self._metrics_sent: dict[int, dict] = \
            {z.rank: {} for z in self.zones}
        self._advance_ns = 0

    # -- protocol handlers -------------------------------------------------

    def pattern_report(self) -> dict[int, list[str]]:
        """Organic (non-tap) subscription patterns per local zone, for
        zones whose bus gained subscriptions since the last report.
        Mirrors the sequential backend's subscription watermark."""
        report: dict[int, list[str]] = {}
        for zone in self.zones:
            order = zone.ctx.bus._order
            if order == self._order_reported[zone.rank]:
                continue
            self._order_reported[zone.rank] = order
            taps = self._tap_subs[zone.rank]
            patterns: list[str] = []
            seen: set[str] = set()
            for sub in zone.ctx.bus._subs:
                if sub.active and sub not in taps \
                        and sub.pattern not in seen:
                    seen.add(sub.pattern)
                    patterns.append(sub.pattern)
            report[zone.rank] = patterns
        return report

    def install_taps(self, directives: list[tuple[int, int, str]]) -> None:
        """Subscribe coordinator-directed relay taps on local source
        zones. One tap closure per (src, dest) pair per call — the same
        sharing the sequential refresh gives one refresh round."""
        round_taps: dict[tuple[int, int], Any] = {}
        for src_rank, dest_rank, pattern in directives:
            src = self.by_rank[src_rank]
            pair = (src_rank, dest_rank)
            if pair not in self._outbox:
                self._outbox[pair] = []
                self._marks[pair] = [-1]
            tap = round_taps.get(pair)
            if tap is None:
                tap = make_relay_tap(src, self._outbox[pair],
                                     self._marks[pair])
                round_taps[pair] = tap
            sub = src.ctx.bus.subscribe(pattern, tap)
            self._tap_subs[src_rank].add(sub)
            # Installing a tap bumps the bus order; that must not
            # masquerade as an organic subscription next barrier.
            self._order_reported[src_rank] = src.ctx.bus._order

    def metrics_report(self) -> dict[int, dict]:
        """Per-zone metric deltas since the last report (rank-keyed).

        Rides every reply that closes an epoch (flushed/sync/final) so
        the coordinator's per-zone replica payloads stay current; deltas
        are per-metric snapshots, so applying them is a dict update and
        ordering across zones cannot matter — the coordinator still
        applies them in (epoch, zone rank) order by construction."""
        report: dict[int, dict] = {}
        for zone in self.zones:
            current = zone.ctx.metrics.to_payload()
            delta = payload_delta(self._metrics_sent[zone.rank], current)
            if delta:
                report[zone.rank] = delta
                self._metrics_sent[zone.rank] = current
        return report

    def advance(self, t_next: float) -> None:
        t0 = ShardProfiler.clock()
        self.sim.run(until=t_next)
        self._advance_ns = ShardProfiler.clock() - t0

    def collect_remote(self) -> dict[tuple[int, int], list]:
        """Snapshot-and-clear outboxes destined for other workers. The
        buffer object itself stays in place — tap closures hold it."""
        remote: dict[tuple[int, int], list] = {}
        for (src_rank, dest_rank), batch in self._outbox.items():
            if dest_rank not in self._local and batch:
                remote[(src_rank, dest_rank)] = list(batch)
                batch.clear()
        return remote

    def flush(self, epoch: int, t_barrier: float,
              remote_in: dict[tuple[int, int], list],
              record_barrier: bool) -> None:
        """Barrier injection for local destination zones: source batches
        in global rank order (local buffers and coordinator-routed
        remote snapshots interleaved by source rank)."""
        latency = self.spec.link_latency_s or 0.0
        n = len(self.spec.zones)
        for dest in self.zones:
            batches = []
            for src_rank in range(n):
                if src_rank == dest.rank:
                    continue
                if src_rank in self._local:
                    batch = self._outbox.get((src_rank, dest.rank))
                else:
                    batch = remote_in.get((src_rank, dest.rank))
                if batch:
                    batches.append(batch)
            count = flush_zone_inbox(dest, batches, latency, epoch,
                                     t_barrier, record_barrier)
            for batch in batches:
                batch.clear()
            self._injected += count

    def drain_trace(self) -> list[tuple[int, list[tuple]]]:
        """Stream out each local zone's retained records (rank order)
        and clear the rings — sequence counters keep counting, so the
        coordinator's replica rings evict exactly like local ones."""
        batches = []
        for zone in self.zones:
            records = [(rec.seq, rec.time_s, rec.topic, rec.payload,
                        rec.span) for rec in zone.ctx.trace]
            if records:
                batches.append((zone.rank, records))
            zone.ctx.trace.clear()
        return batches

    def stats(self) -> dict[str, int]:
        return {"events": self.sim.processed_events,
                "injected": self._injected,
                "advance_ns": self._advance_ns}

    def finalize(self) -> dict[str, Any]:
        results: dict[str, Any] = {}
        if self.spec.finalizer is not None:
            for zone in self.zones:
                results[zone.name] = self.spec.finalizer(
                    self.state.get(zone.rank), zone.name,
                    self.spec.builder_args)
        return results


def worker_main(conn, spec: WorkerSpec) -> None:
    """Subprocess entry point: serve protocol messages until close.

    Every exception — build errors included — is reported as
    ``("error", traceback)`` before exit so the coordinator's barrier
    receive raises instead of hanging.
    """
    try:
        host = ShardWorkerHost(spec)
        conn.send(("ready", host.pattern_report(),
                   host.metrics_report()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _, t_next, taps = msg
                if taps:
                    host.install_taps(taps)
                host.advance(t_next)
                conn.send(("barrier", host.collect_remote(),
                           host.drain_trace(), host.stats()))
            elif cmd == "flush":
                _, epoch, t_barrier, remote_in, record = msg
                host.flush(epoch, t_barrier, remote_in, record)
                conn.send(("flushed", host.pattern_report(),
                           host.metrics_report(), host.stats()))
            elif cmd == "sync":
                conn.send(("trace", host.drain_trace(), host.stats(),
                           host.metrics_report()))
            elif cmd == "finalize":
                conn.send(("final", host.finalize(), host.drain_trace(),
                           host.stats(), host.metrics_report()))
            elif cmd == "close":
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown shard command {cmd!r}")
    except EOFError:  # coordinator went away; nothing left to report
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()
