"""Multiprocess shard execution: one worker process per shard heap.

:class:`ParallelShardedContext` is the parallel twin of
:class:`~repro.runtime.shard.ShardedContext`: zones are grouped onto
``workers`` shard heaps in contiguous rank blocks, but each heap lives
in its own OS process (:mod:`repro.runtime.shard_worker`) and all
shards advance *concurrently* between conservative epoch barriers. The
coordinator drives the same epoch grid — ``barrier(k) = start +
(k+1) * epoch_s`` — routes buffered cross-worker relay messages at each
barrier, and replicates every zone's trace ring from per-epoch record
batches the workers stream back, so the merged trace (and its SHA-256
digest) is byte-identical to the sequential run.

Why determinism survives the process boundary:

* **Zones are the unit of determinism** (see :mod:`repro.runtime.shard`)
  — a zone's seed subtree hangs off its *name*, its records carry
  zone-local sequence numbers, and the worker count only regroups zones
  onto heaps, which PR 7's shard-invariance property already proves
  unobservable.
* **Relay content is membership-pure.** The sequential backend
  propagates tapped patterns transitively through its per-barrier
  refresh (a tap subscription on a destination's bus is itself a
  pattern the next refresh copies to sources). What a (src, dest) pair
  buffers depends only on the *set* of tapped patterns — matching is
  any-pattern with per-publish dedup — so the coordinator can model
  that propagation centrally with sets (:class:`_RelayModel`,
  rank-ordered destination passes, one pass per barrier exactly like
  the sequential watermark) and ship tap directives to workers without
  replaying subscription order.
* **Injection order is reproduced, not approximated.** Workers flush
  their local destination zones in rank order, merging source batches
  in *global* rank order (local buffers and coordinator-routed remote
  snapshots interleaved), through the same ``flush_zone_inbox``
  primitive the sequential backend uses.

The coordinator never blocks forever on a dead worker: every receive
polls the pipe with the process's liveness and a timeout, and a worker
that dies (or reports a traceback) raises :class:`ShardWorkerError`
after terminating the fleet.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.errors import ConfigurationError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import ShardProfiler
from repro.runtime.shard import (
    EPOCH_BUCKETS,
    SHARD_SCOPED_METRICS,
    append_observability_jsonl,
    render_merged_jsonl,
)
from repro.runtime.shard_worker import WorkerSpec, worker_main
from repro.runtime.trace import TraceRecord

_INF = float("inf")

#: Message the sequential backend raises verbatim; kept identical so
#: scenario code can catch one error for either backend.
_NO_LOOKAHEAD_MSG = (
    "zones subscribe to each other's topics but no "
    "cross-zone link latency is configured; pass "
    "link_latency_s= so the epoch barrier has a lookahead")


class ShardWorkerError(ReproError):
    """A shard worker process died, timed out or raised; the run is
    unrecoverable and every sibling worker has been terminated."""


class _RelayModel:
    """Coordinator-side replica of the sequential tap-propagation state.

    ``organic[rank]`` holds the patterns scenario code subscribed on a
    zone's bus (reported by workers); ``tap_patterns[rank]`` the
    patterns of relay taps installed *on* that zone's bus. A refresh
    pass walks destinations in rank order — exactly one pass per
    barrier, like the sequential subscription watermark — and, for
    every destination pattern not yet tapped on a (src, dest) pair,
    emits a directive and records the tap, which makes the pattern
    visible to *later* destinations in the same pass (the sequential
    backend's intra-pass transitivity).
    """

    def __init__(self, n_zones: int):
        self.organic: list[set[str]] = [set() for _ in range(n_zones)]
        self.tap_patterns: list[set[str]] = [set() for _ in range(n_zones)]
        self.tapped: set[tuple[int, int, str]] = set()
        self._dirty = True
        self._rerun = False

    def report(self, rank: int, patterns: Sequence[str]) -> None:
        merged = self.organic[rank] | set(patterns)
        if merged != self.organic[rank]:
            self.organic[rank] = merged
        self._dirty = True

    def refresh(self) -> list[tuple[int, int, str]]:
        """One propagation pass; returns new (src, dest, pattern) tap
        directives. Re-arms itself when a pass installed taps, matching
        the sequential watermark (tap subscriptions bump it too)."""
        if not (self._dirty or self._rerun):
            return []
        self._dirty = False
        directives: list[tuple[int, int, str]] = []
        n = len(self.organic)
        for dest in range(n):
            # sorted() only fixes directive order (bus bookkeeping);
            # relay content is membership-pure, so set iteration order
            # can never be observable — this is belt and braces.
            patterns = sorted(self.organic[dest]
                              | self.tap_patterns[dest])
            for src in range(n):
                if src == dest:
                    continue
                for pattern in patterns:
                    key = (src, dest, pattern)
                    if key in self.tapped:
                        continue
                    self.tapped.add(key)
                    self.tap_patterns[src].add(pattern)
                    directives.append(key)
        self._rerun = bool(directives)
        return directives


class _WorkerHandle:
    __slots__ = ("worker_id", "proc", "conn", "local_ranks", "events",
                 "injected")

    def __init__(self, worker_id, proc, conn, local_ranks):
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.local_ranks = local_ranks
        self.events = 0
        self.injected = 0


class ParallelShardedContext:
    """Drives zone shards in worker processes under epoch barriers.

    Because zones live in other processes, scenario code cannot poke a
    zone's context directly: pass a module-level ``zone_builder(ctx,
    zone_name, zone_args)`` that constructs each zone's processes and
    subscriptions (called once per zone, in rank order, inside its
    worker), and optionally a ``zone_finalizer(state, zone_name,
    zone_args)`` whose picklable return value :meth:`finalize` collects
    — scorecards, aggregates, delivery logs.

    Use as a context manager (or call :meth:`close`) so worker
    processes are reaped deterministically.
    """

    def __init__(self, seed: int = 0, zones: Sequence[str] = ("zone-00",),
                 workers: int = 1, *, link_latency_s: float | None = None,
                 epoch_s: float | None = None, start_time: float = 0.0,
                 trace_capacity: int = 65536, barrier_record_every: int = 1,
                 zone_builder: Callable | None = None,
                 zone_args: Any = None,
                 zone_finalizer: Callable | None = None,
                 start_method: str | None = None,
                 worker_timeout_s: float = 600.0,
                 profile: bool = False):
        names = list(zones)
        if not names:
            raise ConfigurationError("at least one zone is required")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate zone names in {names}")
        if link_latency_s is not None and link_latency_s <= 0:
            raise ConfigurationError("cross-zone link latency must be > 0")
        if epoch_s is not None and epoch_s <= 0:
            raise ConfigurationError("epoch_s must be > 0")
        if barrier_record_every < 1:
            raise ConfigurationError("barrier_record_every must be >= 1")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.seed = int(seed)
        self.n_workers = max(1, min(int(workers), len(names)))
        self.link_latency_s = link_latency_s
        self.lookahead_s = link_latency_s if link_latency_s is not None \
            else _INF
        self.epoch_s = min(epoch_s, self.lookahead_s) \
            if epoch_s is not None else self.lookahead_s
        self._start = float(start_time)
        self._now = self._start
        self._epoch = 0
        self._barrier_record_every = barrier_record_every
        self._timeout_s = worker_timeout_s
        self._names = names
        self._closed = False
        self._final: dict[str, Any] | None = None

        n = len(names)
        self._worker_of = [rank * self.n_workers // n for rank in range(n)]
        # Per-zone trace-ring replicas: same capacity, same eviction as
        # the worker-side rings — tuples (seq, time_s, topic, payload,
        # span) streamed back per epoch.
        self._streams: list[deque] = \
            [deque(maxlen=trace_capacity) for _ in range(n)]
        self._merge_watermark: tuple | None = None
        self._merged: list[tuple[str, TraceRecord]] = []
        self._jsonl: str | None = None
        self._digest: str | None = None

        self._model = _RelayModel(n)
        self._pending_taps: list[tuple[int, int, str]] = []

        self.metrics = MetricsRegistry()
        self.metrics.gauge_callback(
            "runtime.shard.epochs", lambda: float(self._epoch),
            "completed epoch barriers")
        self.metrics.gauge_callback(
            "runtime.shard.workers",
            lambda: float(sum(1 for w in self._workers
                              if w.proc.is_alive())),
            "live shard worker processes")
        self._relay_messages = self.metrics.counter(
            "runtime.shard.relay.messages",
            "cross-zone messages injected at barriers",
            label_key="worker")
        self._relay_routed = self.metrics.counter(
            "runtime.shard.relay.routed",
            "cross-worker messages routed through the coordinator")
        self._trace_batches = self.metrics.counter(
            "runtime.shard.trace.batches",
            "per-epoch record batches streamed back by workers")

        # Per-zone metrics replicas: payload dicts kept current by the
        # per-epoch deltas workers piggyback on their flush acks,
        # applied in (epoch, zone rank) order. aggregate_metrics folds
        # them exactly like the sequential backend folds live zone
        # registries — byte-identical payloads for any worker count.
        self._zone_metrics: list[dict] = [dict() for _ in range(n)]

        #: Opt-in barrier/straggler profiling (unit: worker process).
        #: Coordinator-side only — never observable in the merged trace.
        self.profiler = ShardProfiler(self.n_workers, "parallel") \
            if profile else None
        if self.profiler is not None:
            self._h_advance = self.metrics.histogram(
                "runtime.shard.epoch.advance_seconds",
                "per-shard wall time advancing to each epoch barrier",
                buckets=EPOCH_BUCKETS)
            self._h_wait = self.metrics.histogram(
                "runtime.shard.epoch.wait_seconds",
                "per-shard idle wall time at each epoch barrier",
                buckets=EPOCH_BUCKETS)

        epoch_payload = None if self.epoch_s == _INF else self.epoch_s
        lookahead_payload = None if self.lookahead_s == _INF \
            else self.lookahead_s
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        mp = multiprocessing.get_context(start_method)
        self._workers: list[_WorkerHandle] = []
        try:
            for worker_id in range(self.n_workers):
                local = tuple(rank for rank in range(n)
                              if self._worker_of[rank] == worker_id)
                spec = WorkerSpec(
                    worker_id=worker_id, seed=self.seed,
                    zones=tuple(names), local_ranks=local,
                    start_time=self._start,
                    trace_capacity=trace_capacity,
                    link_latency_s=link_latency_s,
                    epoch_payload=epoch_payload,
                    lookahead_payload=lookahead_payload,
                    builder=zone_builder, builder_args=zone_args,
                    finalizer=zone_finalizer)
                parent_conn, child_conn = mp.Pipe()
                proc = mp.Process(
                    target=worker_main, args=(child_conn, spec),
                    name=f"repro-shard-{worker_id}", daemon=True)
                proc.start()
                child_conn.close()
                self._workers.append(
                    _WorkerHandle(worker_id, proc, parent_conn, local))
            for handle in self._workers:
                msg = self._recv(handle, "ready")
                for rank, patterns in msg[1].items():
                    self._model.report(rank, patterns)
                self._apply_metrics(msg[2])
        except BaseException:
            self._abort()
            raise

    # -- introspection -----------------------------------------------------

    @property
    def zones(self) -> list[str]:
        """Zone names in rank order."""
        return list(self._names)

    @property
    def now(self) -> float:
        """Barrier-synchronized simulated time."""
        return self._now

    @property
    def epoch(self) -> int:
        """Completed epoch count."""
        return self._epoch

    @property
    def events_executed(self) -> int:
        """Total DES events executed across every worker heap (as of
        the last barrier/sync)."""
        return sum(w.events for w in self._workers)

    def worker_of(self, name: str) -> int:
        """Worker process index hosting a zone (execution detail —
        never observable in the merged trace)."""
        try:
            return self._worker_of[self._names.index(name)]
        except ValueError:
            raise ConfigurationError(f"unknown zone {name!r}") from None

    def zone(self, name: str):
        raise ConfigurationError(
            "zones live in worker processes; build them with "
            "zone_builder(ctx, zone, args) and collect results with "
            "zone_finalizer — ParallelShardedContext cannot hand out "
            "a live RuntimeContext")

    # -- worker protocol ---------------------------------------------------

    def _recv(self, handle: _WorkerHandle, expect: str):
        deadline = time.monotonic() + self._timeout_s
        try:
            while not handle.conn.poll(0.05):
                if not handle.proc.is_alive():
                    # Drain a final message (an error report may have
                    # been flushed right before exit).
                    if handle.conn.poll(0.2):
                        break
                    self._abort()
                    raise ShardWorkerError(
                        f"shard worker {handle.worker_id} (zones "
                        f"{[self._names[r] for r in handle.local_ranks]}) "
                        f"died with exit code {handle.proc.exitcode} "
                        f"before the {expect!r} reply")
                if time.monotonic() > deadline:
                    self._abort()
                    raise ShardWorkerError(
                        f"shard worker {handle.worker_id} did not reply "
                        f"within {self._timeout_s}s (awaiting {expect!r})")
            msg = handle.conn.recv()
        except (EOFError, OSError) as exc:
            self._abort()
            raise ShardWorkerError(
                f"pipe to shard worker {handle.worker_id} broke "
                f"(awaiting {expect!r}): {exc}") from None
        if msg[0] == "error":
            self._abort()
            raise ShardWorkerError(
                f"shard worker {handle.worker_id} raised:\n{msg[1]}")
        if msg[0] != expect:  # pragma: no cover - protocol guard
            self._abort()
            raise ShardWorkerError(
                f"shard worker {handle.worker_id} sent {msg[0]!r}, "
                f"expected {expect!r}")
        return msg

    def _send(self, handle: _WorkerHandle, message: tuple) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._abort()
            raise ShardWorkerError(
                f"pipe to shard worker {handle.worker_id} broke on "
                f"send: {exc}") from None

    def _absorb_trace(self, batches) -> None:
        for rank, records in batches:
            self._streams[rank].extend(records)
            self._trace_batches.inc()

    def _absorb_stats(self, handle: _WorkerHandle, stats) -> int:
        """Fold a worker's stats; returns messages injected since the
        last absorb (the profiler's per-worker relay column)."""
        injected = stats["injected"] - handle.injected
        if injected:
            self._relay_messages.inc(
                injected, label=f"worker-{handle.worker_id}")
        handle.injected = stats["injected"]
        handle.events = stats["events"]
        return injected

    def _apply_metrics(self, report: dict[int, dict]) -> None:
        """Apply one worker's per-zone metric deltas to the replicas."""
        for rank, delta in report.items():
            self._zone_metrics[rank].update(delta)

    def _taps_for(self, handle: _WorkerHandle,
                  directives) -> list[tuple[int, int, str]]:
        local = set(handle.local_ranks)
        return [d for d in directives if d[0] in local]

    # -- execution ---------------------------------------------------------

    def run(self, until: float) -> None:
        """Advance every worker to *until* through the epoch-barrier
        loop — same grid, same flush order, same records as the
        sequential backend."""
        if self._closed:
            raise ConfigurationError("ParallelShardedContext is closed")
        deadline = float(until)
        if deadline == _INF:
            raise ConfigurationError(
                "ParallelShardedContext.run() needs a finite horizon")
        if deadline < self._now:
            raise ConfigurationError("run(until=...) lies in the past")
        self._pending_taps.extend(self._model.refresh())
        if self._model.tapped and self.lookahead_s == _INF:
            self._abort()
            raise ConfigurationError(_NO_LOOKAHEAD_MSG)
        while self._now < deadline:
            if self.epoch_s == _INF:
                boundary = deadline
            else:
                boundary = self._start + (self._epoch + 1) * self.epoch_s
            t_next = min(boundary, deadline)
            for handle in self._workers:
                self._send(handle, ("advance", t_next,
                                    self._taps_for(handle,
                                                   self._pending_taps)))
            self._pending_taps = []
            remote_for: list[dict] = [dict() for _ in self._workers]
            advance_ns = [0] * self.n_workers
            relay = [0] * self.n_workers
            for handle in self._workers:
                msg = self._recv(handle, "barrier")
                _, remote_out, batches, stats = msg
                for (src, dest), batch in remote_out.items():
                    remote_for[self._worker_of[dest]][(src, dest)] = batch
                    self._relay_routed.inc(len(batch))
                self._absorb_trace(batches)
                self._absorb_stats(handle, stats)
                advance_ns[handle.worker_id] = stats["advance_ns"]
            record = self._epoch % self._barrier_record_every == 0
            for handle in self._workers:
                self._send(handle, (
                    "flush", self._epoch, t_next,
                    remote_for[handle.worker_id], record))
            # Post-flush pattern reports feed the relay model; new tap
            # directives ride the next advance — the same point in the
            # epoch the sequential backend refreshes its taps. Metric
            # deltas ride the same ack, applied worker-by-worker with
            # zones in rank order within each replica update.
            for handle in self._workers:
                msg = self._recv(handle, "flushed")
                for rank, patterns in msg[1].items():
                    self._model.report(rank, patterns)
                self._apply_metrics(msg[2])
                relay[handle.worker_id] = \
                    self._absorb_stats(handle, msg[3])
            self._pending_taps.extend(self._model.refresh())
            if self.profiler is not None:
                self.profiler.record_epoch(self._epoch, t_next,
                                           advance_ns, relay)
                row = self.profiler.epochs[-1]
                for adv, wait in zip(row["advance_ns"], row["wait_ns"]):
                    self._h_advance.observe(adv / 1e9)
                    self._h_wait.observe(wait / 1e9)
            if self._model.tapped and self.lookahead_s == _INF:
                self._abort()
                raise ConfigurationError(_NO_LOOKAHEAD_MSG)
            self._now = t_next
            if boundary <= deadline:
                self._epoch += 1
        # Pull the records the final flush produced so the merged trace
        # is complete without waiting for finalize().
        for handle in self._workers:
            self._send(handle, ("sync",))
        for handle in self._workers:
            msg = self._recv(handle, "trace")
            self._absorb_trace(msg[1])
            self._absorb_stats(handle, msg[2])
            self._apply_metrics(msg[3])

    def finalize(self) -> dict[str, Any]:
        """Collect every zone finalizer's result, keyed by zone name."""
        if self._final is not None:
            return self._final
        if self._closed:
            raise ConfigurationError(
                "ParallelShardedContext is closed; finalize() before "
                "close()")
        results: dict[str, Any] = {}
        for handle in self._workers:
            self._send(handle, ("finalize",))
        for handle in self._workers:
            msg = self._recv(handle, "final")
            results.update(msg[1])
            self._absorb_trace(msg[2])
            self._absorb_stats(handle, msg[3])
            self._apply_metrics(msg[4])
        self._final = results
        return results

    def close(self) -> None:
        """Shut the worker fleet down; the merged trace, digest and
        finalize() results stay readable afterwards."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():  # pragma: no cover - slow exit
                handle.proc.terminate()
                handle.proc.join(timeout=2.0)
            handle.conn.close()

    def _abort(self) -> None:
        """Terminate every worker after a failure; idempotent."""
        self._closed = True
        for handle in self._workers:
            if handle.proc.is_alive():
                handle.proc.terminate()
        for handle in self._workers:
            handle.proc.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ParallelShardedContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- merged trace ------------------------------------------------------

    def _trace_watermark(self) -> tuple:
        return tuple((len(s), s[-1][0] if s else -1)
                     for s in self._streams)

    def merged_records(self) -> list[tuple[str, TraceRecord]]:
        """Every zone's retained records as one globally ordered stream
        — same ``(time_s, zone_rank, zone_seq)`` order, same record
        shape as the sequential backend. Memoized; treat as read-only."""
        watermark = self._trace_watermark()
        if watermark != self._merge_watermark:
            keyed = [(time_s, rank, seq, topic, payload, span)
                     for rank, stream in enumerate(self._streams)
                     for seq, time_s, topic, payload, span in stream]
            keyed.sort(key=lambda item: (item[0], item[1], item[2]))
            self._merged = [
                (self._names[rank],
                 TraceRecord(seq=seq, time_s=time_s, topic=topic,
                             payload=payload, span=span))
                for time_s, rank, seq, topic, payload, span in keyed]
            self._jsonl = None
            self._digest = None
            self._merge_watermark = watermark
        return self._merged

    def to_jsonl(self) -> str:
        """The merged trace as deterministic JSONL (global seq, zone
        tag) — byte-identical to the sequential backend's."""
        merged = self.merged_records()
        if self._jsonl is None:
            self._jsonl = render_merged_jsonl(
                (name, rec.time_s, rec.topic, rec.payload, rec.span)
                for name, rec in merged)
        return self._jsonl

    def export_jsonl(self, path: str | Path, *,
                     observability: bool = False) -> int:
        """Write the merged trace to *path*; returns records written.
        ``observability=True`` appends the aggregated metrics snapshot
        (plus the profiler payload when profiling) — same trailing rows,
        byte for byte, as the sequential backend's export."""
        text = self.to_jsonl()
        if observability:
            text = append_observability_jsonl(
                text, self.snapshot_observability(), self._now)
        Path(path).write_text(text + ("\n" if text else ""))
        return text.count("\n") + 1 if text else 0

    def digest(self) -> str:
        """SHA-256 over the merged trace bytes — must equal the
        sequential run's digest for the same scenario and seed."""
        text = self.to_jsonl()
        if self._digest is None:
            self._digest = hashlib.sha256(text.encode()).hexdigest()
        return self._digest

    # -- aggregated observability ------------------------------------------

    def aggregate_metrics(self) -> MetricsRegistry:
        """Fold the per-zone metric replicas (kept current by the
        per-epoch worker deltas) into one global registry, zones in
        rank order — byte-identical to the sequential backend's
        ``aggregate_metrics`` for any worker count. Shard-execution-
        detail metrics are excluded and the backend-invariant event
        total re-derived, exactly like the sequential fold."""
        registry = MetricsRegistry()
        for payload in self._zone_metrics:
            registry.merge_payload(payload,
                                   exclude=SHARD_SCOPED_METRICS)
        registry.gauge(
            "continuum.sim.events_executed",
            "DES events executed across every shard heap"
        ).set(self.events_executed)
        return registry

    def snapshot_observability(self) -> dict[str, Any]:
        """Aggregated metrics payload plus the shard profile (if
        profiling) — same shape and bytes as the sequential backend."""
        snapshot: dict[str, Any] = {
            "metrics": self.aggregate_metrics().to_payload()}
        if self.profiler is not None:
            snapshot["profile"] = self.profiler.to_payload()
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ParallelShardedContext(seed={self.seed}, "
                f"zones={len(self._names)}, workers={self.n_workers}, "
                f"now={self._now}, epoch={self._epoch})")
