"""Runtime layer: the shared spine every subsystem is injected with.

:class:`RuntimeContext` owns the canonical simulator (virtual clock),
the traced event bus, the RNG seed tree and the structured trace
recorder; :meth:`RuntimeContext.adopt` is the single context-injection
surface that normalizes legacy ``Simulator``-style injection onto it
(the old ``ensure_context`` / ``as_simulator`` helpers are deprecated
shims over it). See DESIGN.md ("Runtime layer").
"""

from repro.runtime.context import (
    RuntimeContext,
    TracedEventBus,
    as_simulator,
    ensure_context,
)
from repro.runtime.parallel import ParallelShardedContext, ShardWorkerError
from repro.runtime.shard import (
    SHARD_SCOPED_METRICS,
    ShardedContext,
    ZoneRuntime,
)
from repro.runtime.shard_worker import ShardWorkerHost, WorkerSpec
from repro.runtime.trace import TraceRecord, TraceRecorder, jsonify

__all__ = [
    "ParallelShardedContext",
    "RuntimeContext",
    "SHARD_SCOPED_METRICS",
    "ShardedContext",
    "ShardWorkerError",
    "ShardWorkerHost",
    "TracedEventBus",
    "TraceRecord",
    "TraceRecorder",
    "WorkerSpec",
    "ZoneRuntime",
    "as_simulator",
    "ensure_context",
    "jsonify",
]
