"""Zone-sharded simulation: conservative epoch barriers over zone runtimes.

City-scale scenarios (10k+ devices) cannot run through one monolithic
:class:`~repro.continuum.simulator.Simulator` heap and one global bus.
A :class:`ShardedContext` partitions the continuum *by zone*: every zone
gets its own logical runtime view (a :class:`~repro.runtime.context.
RuntimeContext` with its own RNG seed subtree, trace recorder and traced
bus), and zones are grouped onto physical shards — one ``Simulator``
heap per shard. Shards advance independently inside an epoch and
synchronize at conservative barriers.

Determinism argument (the invariant everything here serves): the *zone*,
not the shard, is the unit of determinism. A zone's seed subtree is
derived from the root seed and the zone *name* (never the shard id), its
trace records carry zone-local sequence numbers, and zones interact only
through the epoch relay, whose buffering and delivery order is a pure
function of (epoch, zone rank, per-pair sequence). Regrouping zones onto
a different shard count therefore cannot change any zone's record
stream, and the merged trace — sorted by ``(time_s, zone rank, zone
seq)`` — is byte-identical between a single-shard and an N-shard run of
the same scenario and seed. ``tests/test_sharded.py`` pins this with a
hypothesis property over random partitions and seeds.

Epoch-barrier protocol: the epoch length is bounded by the *lookahead*,
the minimum cross-zone link latency. Any message published in epoch k
(send time t) physically arrives no earlier than ``t + lookahead >=
barrier(k)``, so shards can drain epoch k without seeing each other's
traffic; at the barrier each buffered message is injected into its
destination shard as a DES event at its true arrival time ``t +
link_latency``. Injection iterates destination zones in rank order,
source zones in rank order and messages in send order — the
deterministic ``(epoch, zone_rank, seq)`` delivery order.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.errors import ConfigurationError, NotFoundError
from repro.core.rng import derive_seed
from repro.obs.metrics import METRICS_TOPIC, MetricsRegistry
from repro.obs.profiler import SHARD_PROFILE_TOPIC, ShardProfiler
from repro.obs.spans import SPAN_TOPIC, SpanContext, _RelayScope
from repro.runtime.context import RuntimeContext
from repro.runtime.trace import TraceRecord

_INF = float("inf")

#: Topics the epoch machinery itself publishes (declared as contracts in
#: :mod:`repro.analysis.flow.topics`).
PARTITION_TOPIC = "shard.partition.assign"
BARRIER_TOPIC = "shard.epoch.barrier"
RELAY_TOPIC = "shard.relay.deliver"

#: Metric names excluded from cross-zone aggregation: they read
#: execution-detail state (the *shared* shard heap, the live ring
#: occupancy of a trace that workers drain per epoch), so their values
#: depend on the shard/worker count even though every zone-deterministic
#: fact does not. ``aggregate_metrics`` re-derives the one that has a
#: backend-invariant meaning (total events executed) from coordinator
#: state instead.
SHARD_SCOPED_METRICS = frozenset({
    "continuum.sim.events_executed",
    "runtime.trace.records",
    "runtime.trace.dropped",
})

#: Buckets for the ``runtime.shard.epoch.*`` wall-time histograms:
#: microseconds (trivial shards) up to seconds (100k-device heaps).
EPOCH_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


class ZoneRuntime:
    """One zone's logical runtime view inside a :class:`ShardedContext`.

    Owns the zone's :class:`RuntimeContext` (seed subtree, trace, bus —
    the ``Simulator`` underneath is the *shard's* heap, shared with the
    other zones grouped on that shard). Scenario code builds a zone's
    devices, fleets and subscriptions against :attr:`ctx` exactly as it
    would against a standalone context.
    """

    __slots__ = ("name", "rank", "shard", "ctx", "suppress_seq",
                 "relay_scope")

    def __init__(self, name: str, rank: int, shard: int,
                 ctx: RuntimeContext):
        self.name = name
        self.rank = rank
        self.shard = shard
        self.ctx = ctx
        #: Bus publish id of an in-flight relay delivery on this zone;
        #: relay taps skip that publish so a message is relayed once,
        #: from its origin zone, never re-forwarded by a destination.
        self.suppress_seq = -1
        #: Reusable ambient-stack entry for :func:`relay_deliver`.
        #: Deliveries on one zone never nest (they are DES callbacks,
        #: and further relays cross a barrier first) and nothing
        #: retains the scope between deliveries — only its envelope
        #: dict, which IS rebuilt per delivery — so one object serves
        #: every delivery without a per-message allocation.
        self.relay_scope = _RelayScope({})


# -- relay primitives shared by the sequential and multiprocess backends --
#
# The parallel backend (repro.runtime.parallel / shard_worker) re-runs
# these exact functions inside worker processes. Byte-identity between
# the two backends rests on there being ONE implementation of tap
# buffering, relay delivery and barrier injection — do not fork copies.

def make_relay_tap(src: ZoneRuntime, outbox: list, mark: list):
    """Tap closure buffering *src*'s matching publishes for one
    (src, dest) pair. ``mark`` holds the last relayed publish id so a
    publish matching several tapped patterns is buffered once.

    Alongside ``(send_s, topic, payload)`` the tap captures the open
    span context: bus delivery is synchronous, so the publisher's span
    is still ambient when the tap fires. It is shipped as a plain
    ``(trace_id, span_id)`` tuple (picklable — the parallel backend
    routes buffers through worker pipes) and resumed in the destination
    zone by :func:`relay_deliver`, which is how one fault's causal tree
    crosses zones and worker processes."""
    bus = src.ctx.bus
    sim = src.ctx.sim
    stack = src.ctx.tracer._stack
    # One ambient span usually covers a burst of publishes (a fault and
    # its fallout), so the shipped tuple is cached per context object.
    # The cache holds a strong reference, so the id can't be recycled
    # under the identity check.
    last = [None, None]

    def tap(topic: str, payload: Any) -> None:
        # The bus publish id is unique per publish on this zone and —
        # unlike the trace sequence — stable for the whole delivery
        # even when an earlier handler records spans or publishes
        # nested messages, so it both dedupes a publish matching
        # several tapped patterns and identifies the relay's own
        # delivery publish (suppress_seq) to stop re-forwarding.
        pub = bus.current_pub
        if mark[0] == pub or src.suppress_seq == pub:
            return
        mark[0] = pub
        if stack:
            context = stack[-1].context
            if context is last[0]:
                shipped = last[1]
            else:
                shipped = (context.trace_id, context.span_id)
                last[0] = context
                last[1] = shipped
        else:
            shipped = None
        outbox.append((sim.now, topic, payload, shipped))
    return tap


#: Prebuilt shape of the ``obs.span`` payload the relay fast path
#: records — copied and filled per delivery so the constant keys cost
#: one ``dict.copy`` instead of a literal rebuild.
_RELAY_SPAN_TEMPLATE = {
    "name": "shard.relay.deliver", "layer": "runtime",
    "trace_id": "", "span_id": "", "parent_id": None,
    "start_s": 0.0, "end_s": 0.0, "status": "ok", "attrs": None,
}


def relay_deliver(dest: ZoneRuntime, topic: str, payload: Any,
                  span: tuple | None = None) -> None:
    """Publish a relayed message on *dest*'s bus without re-forwarding.

    When the buffered publish carried a span context, the delivery
    resumes it and opens a ``shard.relay.deliver`` child span around the
    publish — its id minted from the *destination* zone's ``obs.tracer``
    stream, so the span tree is a pure function of zone streams and
    stays byte-identical for any shard/worker count. Handlers react
    inside the relay span, nesting their own spans (and any further
    relayed publishes) under the original cause.
    """
    bus = dest.ctx.bus
    tracer = dest.ctx.tracer
    if span is None or not tracer.enabled:
        dest.suppress_seq = bus.pub_seq + 1
        bus.publish(topic, payload)
        dest.suppress_seq = -1
        return
    # Hand-inlined equivalent of
    #     with tracer.resume(SpanContext(span[0], span[1])):
    #         with tracer.start_span("shard.relay.deliver",
    #                                layer="runtime", topic=topic,
    #                                zone=dest.name):
    #             <suppressed publish>
    # — same RNG draw, same stack visibility, byte-identical obs.span
    # record (pinned by a test). This runs once per relayed message;
    # the generic context managers would cost more than the relay, and
    # the perf gate holds span propagation at <= 1.3x the bare relay.
    trace_id, parent_id = span
    # Same RNG stream and rendering as Tracer._new_id, minus the call;
    # same clock as Tracer._clock (the context wires the tracer to
    # ``sim.now``), minus the lambda hop.
    span_id = "%016x" % tracer._id_rng.getrandbits(64)
    now = dest.ctx.sim.now
    stack = tracer._stack
    scope = dest.relay_scope
    scope.envelope = {"trace_id": trace_id, "span_id": span_id,
                      "parent_id": parent_id}
    stack.append(scope)
    status = "ok"
    try:
        dest.suppress_seq = bus.pub_seq + 1
        bus.publish(topic, payload)
        dest.suppress_seq = -1
    except BaseException:
        status = "error"
        raise
    finally:
        stack.pop()
        tracer.spans_recorded += 1
        rec = _RELAY_SPAN_TEMPLATE.copy()
        rec["trace_id"] = trace_id
        rec["span_id"] = span_id
        rec["parent_id"] = parent_id
        rec["start_s"] = now
        rec["end_s"] = now
        rec["status"] = status
        rec["attrs"] = {"topic": topic, "zone": dest.name}
        # TraceRecorder.record_raw, inlined (the payload is already
        # JSON-primitive and `now` already a float).
        trace = tracer._trace
        trace._records.append(TraceRecord(trace._seq, now, SPAN_TOPIC,
                                          rec))
        trace._seq += 1


def flush_zone_inbox(dest: ZoneRuntime, batches: Iterable[list],
                     latency: float, epoch: int, t_barrier: float,
                     record_barrier: bool) -> int:
    """Barrier injection for one destination zone: schedule every
    buffered message (batches already in source-rank order, messages in
    send order) as a DES event at its true arrival time, then publish
    the relay/barrier bookkeeping records. Returns messages injected."""
    sim = dest.ctx.sim
    count = 0
    spans = 0
    for batch in batches:
        for send_s, topic, payload, span in batch:
            # Mathematically send + latency >= barrier; clamp the
            # one-ulp float shortfall when the sum rounds below
            # the epoch-grid boundary (same clamp on every shard
            # count — the grid is computed identically).
            delay = send_s + latency - sim.now
            arrival = sim.timeout(delay if delay > 0.0 else 0.0)
            arrival.add_callback(
                lambda _ev, _z=dest, _t=topic, _p=payload, _s=span:
                relay_deliver(_z, _t, _p, _s))
            count += 1
            if span is not None:
                spans += 1
    if count:
        dest.ctx.publish(RELAY_TOPIC, {
            "epoch": epoch, "zone": dest.name, "count": count,
            "spans": spans, "time_s": t_barrier})
    if record_barrier:
        dest.ctx.publish(BARRIER_TOPIC, {
            "epoch": epoch, "zone": dest.name, "time_s": t_barrier})
    return count


def render_merged_jsonl(rows: Iterable[tuple]) -> str:
    """Render merged ``(zone_name, time_s, topic, payload, span)`` rows
    as the canonical deterministic JSONL both backends fingerprint."""
    lines = []
    for seq, (zone_name, time_s, topic, payload, span) in enumerate(rows):
        obj = {"seq": seq, "zone": zone_name, "time_s": time_s,
               "topic": topic, "payload": payload}
        if span is not None:
            obj["span"] = span
        lines.append(json.dumps(obj, sort_keys=True,
                                separators=(",", ":")))
    return "\n".join(lines)


def append_observability_jsonl(text: str, snapshot: dict,
                               time_s: float) -> str:
    """Append ``obs.metrics`` (and, when profiling, ``obs.shard_profile``)
    rows to a merged-trace JSONL, continuing the global seq — the
    sharded counterpart of ``RuntimeContext.snapshot_observability``.
    The rows are appended at export time only; ``digest()`` fingerprints
    the pure event trace, so exporting observability (whose profile
    rows carry nondeterministic wall times) never moves the digest."""
    lines = [text] if text else []
    seq = text.count("\n") + 1 if text else 0
    rows = [(METRICS_TOPIC, snapshot["metrics"])]
    profile = snapshot.get("profile")
    if profile is not None:
        rows.append((SHARD_PROFILE_TOPIC, profile))
    for topic, payload in rows:
        lines.append(json.dumps(
            {"seq": seq, "time_s": time_s, "topic": topic,
             "payload": payload}, sort_keys=True, separators=(",", ":")))
        seq += 1
    return "\n".join(lines)


class ShardedContext:
    """Coordinates per-shard simulators under conservative epoch barriers.

    ``zones`` fixes the zone names and their ranks (list order); zones
    are grouped onto ``n_shards`` simulator heaps in contiguous rank
    blocks. ``link_latency_s`` is the minimum cross-zone link latency —
    the lookahead that bounds the epoch length; ``epoch_s`` may shorten
    (never stretch) the epoch below the lookahead.

    The sharding is *invisible* to the scenario: the epoch grid, the
    relay order and every zone's record stream depend only on the zone
    list, the seed and the latency configuration — see the module
    docstring for the determinism argument.
    """

    def __init__(self, seed: int = 0, zones: Sequence[str] = ("zone-00",),
                 n_shards: int = 1, *, link_latency_s: float | None = None,
                 epoch_s: float | None = None, start_time: float = 0.0,
                 trace_capacity: int = 65536,
                 barrier_record_every: int = 1, profile: bool = False):
        names = list(zones)
        if not names:
            raise ConfigurationError("at least one zone is required")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate zone names in {names}")
        if link_latency_s is not None and link_latency_s <= 0:
            raise ConfigurationError("cross-zone link latency must be > 0")
        if epoch_s is not None and epoch_s <= 0:
            raise ConfigurationError("epoch_s must be > 0")
        if barrier_record_every < 1:
            raise ConfigurationError("barrier_record_every must be >= 1")
        self.seed = int(seed)
        self.n_shards = max(1, min(int(n_shards), len(names)))
        self.link_latency_s = link_latency_s
        #: Conservative lookahead: how far a shard may run ahead without
        #: missing cross-zone traffic. Never smaller than the minimum
        #: cross-zone link latency (it *is* that latency).
        self.lookahead_s = link_latency_s if link_latency_s is not None \
            else _INF
        self.epoch_s = min(epoch_s, self.lookahead_s) \
            if epoch_s is not None else self.lookahead_s
        self._start = float(start_time)
        self._now = self._start
        self._epoch = 0
        self._barrier_record_every = barrier_record_every

        # One DES heap per shard; runtime/ is the allowlisted home for
        # direct Simulator construction (continuum-lint).
        from repro.continuum.simulator import Simulator
        self._sims = [Simulator(start_time) for _ in range(self.n_shards)]
        self._zones: list[ZoneRuntime] = []
        self._by_name: dict[str, ZoneRuntime] = {}
        n = len(names)
        for rank, name in enumerate(names):
            shard = rank * self.n_shards // n
            # The seed subtree hangs off the zone *name*: invariant to
            # zone order, shard count and shard assignment.
            ctx = RuntimeContext(
                seed=derive_seed(self.seed, f"shard.zone.{name}"),
                start_time=start_time, trace_capacity=trace_capacity,
                sim=self._sims[shard])
            zone = ZoneRuntime(name, rank, shard, ctx)
            self._zones.append(zone)
            self._by_name[name] = zone

        # Relay state: per (src_rank, dest_rank) message buffers filled
        # by taps during an epoch, drained at the barrier. Markers hold
        # the last relayed publish id per pair (a publish matching
        # several tapped patterns is buffered once).
        self._outbox: dict[tuple[int, int], list] = {}
        self._marks: dict[tuple[int, int], list[int]] = {}
        self._tapped: set[tuple[int, int, str]] = set()
        self._sub_watermark = -1

        # Merged-trace memoization: --check twin comparisons call
        # digest()/scorecard() repeatedly; re-sorting an unchanged trace
        # is pure waste. The watermark is (seq, len) per zone — any
        # record appended or evicted since the last merge changes it.
        self._merge_watermark: tuple | None = None
        self._merged: list[tuple[str, TraceRecord]] = []
        self._jsonl: str | None = None
        self._digest: str | None = None

        #: Coordinator-side observability (runtime.shard.*): epoch
        #: progress, relay traffic and per-barrier backlog. Lives on the
        #: coordinator, not any zone context, so reading it never
        #: perturbs a zone's trace.
        self.metrics = MetricsRegistry()
        self.metrics.gauge_callback(
            "runtime.shard.epochs", lambda: float(self._epoch),
            "completed epoch barriers")
        self.metrics.gauge_callback(
            "runtime.shard.relay.backlog",
            lambda: float(sum(len(b) for b in self._outbox.values())),
            "cross-zone messages buffered awaiting the next barrier")
        self._relay_messages = self.metrics.counter(
            "runtime.shard.relay.messages",
            "cross-zone messages injected at barriers", label_key="zone")

        #: Opt-in barrier/straggler profiling. Wall times live on the
        #: coordinator (profiler + runtime.shard.epoch.* histograms),
        #: never in a zone trace — profiling cannot move the digest.
        self.profiler = ShardProfiler(self.n_shards, "sequential") \
            if profile else None
        if self.profiler is not None:
            self._h_advance = self.metrics.histogram(
                "runtime.shard.epoch.advance_seconds",
                "per-shard wall time advancing to each epoch barrier",
                buckets=EPOCH_BUCKETS)
            self._h_wait = self.metrics.histogram(
                "runtime.shard.epoch.wait_seconds",
                "per-shard idle wall time at each epoch barrier",
                buckets=EPOCH_BUCKETS)

        epoch_payload = None if self.epoch_s == _INF else self.epoch_s
        lookahead_payload = None if self.lookahead_s == _INF \
            else self.lookahead_s
        for zone in self._zones:
            zone.ctx.publish("shard.partition.assign", {
                "zone": zone.name, "rank": zone.rank,
                "epoch_s": epoch_payload,
                "lookahead_s": lookahead_payload,
                "time_s": self._start})

    @classmethod
    def for_partition(cls, partition: Any, *, seed: int = 0,
                      n_shards: int = 1, **kwargs: Any) -> "ShardedContext":
        """Build from a :meth:`~repro.continuum.infrastructure.
        Infrastructure.partition` result: zone ranks follow the
        partition's zone order and the lookahead is its minimum
        cross-zone link latency."""
        latency = partition.min_cross_latency_s
        if latency == _INF:
            latency = None
        return cls(seed=seed, zones=partition.zones, n_shards=n_shards,
                   link_latency_s=latency, **kwargs)

    # -- zone access -------------------------------------------------------

    @property
    def zones(self) -> list[str]:
        """Zone names in rank order."""
        return [z.name for z in self._zones]

    @property
    def zone_runtimes(self) -> list[ZoneRuntime]:
        return list(self._zones)

    def zone(self, name: str) -> RuntimeContext:
        """The :class:`RuntimeContext` scenario code builds zone *name* on."""
        try:
            return self._by_name[name].ctx
        except KeyError:
            raise NotFoundError(f"unknown zone {name!r}") from None

    def shard_of(self, name: str) -> int:
        """Physical shard index a zone is grouped on (execution detail —
        never observable in the merged trace)."""
        return self._by_name[name].shard

    @property
    def now(self) -> float:
        """Barrier-synchronized simulated time."""
        return self._now

    @property
    def epoch(self) -> int:
        """Completed epoch count."""
        return self._epoch

    # -- cross-zone relay --------------------------------------------------

    def _refresh_relays(self) -> None:
        """(Re)install relay taps: for every pattern some zone subscribes
        to, every *other* zone's bus gets a tap buffering matching
        publishes for barrier delivery. Idempotent; re-run whenever a
        subscription was added since the last barrier."""
        watermark = sum(z.ctx.bus._order for z in self._zones)
        if watermark == self._sub_watermark:
            return
        self._sub_watermark = watermark
        for dest in self._zones:
            patterns: list[str] = []
            seen: set[str] = set()
            for sub in dest.ctx.bus._subs:
                if sub.active and sub.pattern not in seen:
                    seen.add(sub.pattern)
                    patterns.append(sub.pattern)
            for src in self._zones:
                if src is dest:
                    continue
                pair = (src.rank, dest.rank)
                if pair not in self._outbox:
                    self._outbox[pair] = []
                    self._marks[pair] = [-1]
                tap = None
                for pattern in patterns:
                    key = (src.rank, dest.rank, pattern)
                    if key in self._tapped:
                        continue
                    if tap is None:
                        tap = self._make_tap(src, pair)
                    self._tapped.add(key)
                    src.ctx.bus.subscribe(pattern, tap)
        if self._tapped and self.lookahead_s == _INF:
            raise ConfigurationError(
                "zones subscribe to each other's topics but no "
                "cross-zone link latency is configured; pass "
                "link_latency_s= so the epoch barrier has a lookahead")

    def _make_tap(self, src: ZoneRuntime, pair: tuple[int, int]):
        return make_relay_tap(src, self._outbox[pair], self._marks[pair])

    def _flush(self, epoch: int, t_barrier: float) -> list[int]:
        """Barrier: inject buffered cross-zone messages into their
        destination shards at true arrival times, in deterministic
        (epoch, zone_rank, seq) order. Returns per-shard injected
        counts (the profiler's relay column)."""
        latency = self.link_latency_s or 0.0
        record_barrier = epoch % self._barrier_record_every == 0
        relay = [0] * self.n_shards
        for dest in self._zones:
            batches = []
            for src in self._zones:
                if src is dest:
                    continue
                batch = self._outbox.get((src.rank, dest.rank))
                if batch:
                    batches.append(batch)
            count = flush_zone_inbox(dest, batches, latency, epoch,
                                     t_barrier, record_barrier)
            for batch in batches:
                batch.clear()
            if count:
                self._relay_messages.inc(count, label=dest.name)
                relay[dest.shard] += count
        return relay

    # -- execution ---------------------------------------------------------

    def run(self, until: float) -> None:
        """Advance every shard to *until* through the epoch-barrier loop.

        ``until`` must be finite: an unbounded drain has no barrier
        schedule. The epoch grid is anchored at the start time —
        ``barrier(k) = start + (k+1) * epoch_s`` — so it is identical
        for every shard count and for any sequence of ``run()`` calls
        ending at the same horizon.
        """
        deadline = float(until)
        if deadline == _INF:
            raise ConfigurationError(
                "ShardedContext.run() needs a finite horizon")
        if deadline < self._now:
            raise ConfigurationError("run(until=...) lies in the past")
        self._refresh_relays()
        while self._now < deadline:
            if self.epoch_s == _INF:
                boundary = deadline
            else:
                boundary = self._start + (self._epoch + 1) * self.epoch_s
            t_next = min(boundary, deadline)
            profiler = self.profiler
            if profiler is not None:
                advance_ns = []
                for sim in self._sims:
                    t0 = profiler.clock()
                    sim.run(until=t_next)
                    advance_ns.append(profiler.clock() - t0)
            else:
                for sim in self._sims:
                    sim.run(until=t_next)
            relay = self._flush(self._epoch, t_next)
            if profiler is not None:
                profiler.record_epoch(self._epoch, t_next, advance_ns,
                                      relay)
                row = profiler.epochs[-1]
                for adv, wait in zip(row["advance_ns"], row["wait_ns"]):
                    self._h_advance.observe(adv / 1e9)
                    self._h_wait.observe(wait / 1e9)
            self._now = t_next
            if boundary <= deadline:
                self._epoch += 1
            # Taps for subscriptions added during the epoch take effect
            # at the barrier — identically for every shard count.
            self._refresh_relays()

    # -- merged trace ------------------------------------------------------

    @property
    def events_executed(self) -> int:
        """Total DES events executed across every shard heap."""
        return sum(sim.processed_events for sim in self._sims)

    def _trace_watermark(self) -> tuple:
        return tuple((z.ctx.trace._seq, len(z.ctx.trace))
                     for z in self._zones)

    def merged_records(self) -> list[tuple[str, TraceRecord]]:
        """Every zone's retained records as one globally ordered stream.

        Sorted by ``(time_s, zone_rank, zone_seq)`` — a total order that
        is a pure function of the per-zone record streams, hence
        shard-count-invariant. Memoized until the next record lands
        (``--check`` twin comparisons hit digest()/scorecard()
        repeatedly); treat the returned list as read-only.
        """
        watermark = self._trace_watermark()
        if watermark != self._merge_watermark:
            keyed = [(rec.time_s, zone.rank, rec.seq, zone.name, rec)
                     for zone in self._zones for rec in zone.ctx.trace]
            keyed.sort(key=lambda item: (item[0], item[1], item[2]))
            self._merged = [(name, rec) for _, _, _, name, rec in keyed]
            self._jsonl = None
            self._digest = None
            self._merge_watermark = watermark
        return self._merged

    def to_jsonl(self) -> str:
        """The merged trace as deterministic JSONL (global seq, zone tag)."""
        merged = self.merged_records()
        if self._jsonl is None:
            self._jsonl = render_merged_jsonl(
                (name, rec.time_s, rec.topic, rec.payload, rec.span)
                for name, rec in merged)
        return self._jsonl

    def export_jsonl(self, path: str | Path, *,
                     observability: bool = False) -> int:
        """Write the merged trace to *path*; returns records written.

        ``observability=True`` appends the aggregated metrics snapshot
        (and the profiler payload when profiling) as trailing rows, so
        one file feeds every ``repro-obs`` subcommand. The digest stays
        over the pure event trace either way."""
        text = self.to_jsonl()
        if observability:
            text = append_observability_jsonl(
                text, self.snapshot_observability(), self._now)
        Path(path).write_text(text + ("\n" if text else ""))
        return text.count("\n") + 1 if text else 0

    def digest(self) -> str:
        """SHA-256 over the merged trace bytes — the replay fingerprint
        the scale example and CI pin."""
        text = self.to_jsonl()
        if self._digest is None:
            self._digest = hashlib.sha256(text.encode()).hexdigest()
        return self._digest

    # -- aggregated observability ------------------------------------------

    def aggregate_metrics(self) -> MetricsRegistry:
        """Fold every zone's registry into one global registry.

        Merge order is fixed by zone rank (and, on the parallel twin,
        deltas are applied in ``(epoch, zone rank)`` order), shard-
        execution-detail metrics are excluded (:data:`
        SHARD_SCOPED_METRICS`) and the backend-invariant event total is
        re-derived from the coordinator — so ``to_payload()`` /
        ``render_exposition`` are byte-identical across backends and
        worker counts. Pinned by ``tests/test_obs_sharded.py``."""
        registry = MetricsRegistry()
        for zone in self._zones:
            registry.merge_payload(zone.ctx.metrics.to_payload(),
                                   exclude=SHARD_SCOPED_METRICS)
        registry.gauge(
            "continuum.sim.events_executed",
            "DES events executed across every shard heap"
        ).set(self.events_executed)
        return registry

    def snapshot_observability(self) -> dict[str, Any]:
        """Aggregated metrics payload plus the shard profile (if
        profiling) — the dict :meth:`export_jsonl` appends and the
        ``repro-obs metrics``/``shards`` subcommands render."""
        snapshot: dict[str, Any] = {
            "metrics": self.aggregate_metrics().to_payload()}
        if self.profiler is not None:
            snapshot["profile"] = self.profiler.to_payload()
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ShardedContext(seed={self.seed}, "
                f"zones={len(self._zones)}, shards={self.n_shards}, "
                f"now={self._now}, epoch={self._epoch})")
