"""The shared runtime spine of the continuum: one clock, one bus, one RNG tree.

The paper's architecture is a *single* cognitive computing continuum in
which monitoring, MIRTO orchestration and the low-level (Kubernetes-like)
orchestrator observe and act on the same evolving system state. A
:class:`RuntimeContext` is that shared state's plumbing: it owns the
canonical :class:`~repro.continuum.simulator.Simulator` (virtual clock),
the :class:`~repro.core.events.EventBus` (every publish is stamped with
simulated time and recorded in the trace), the
:class:`~repro.core.rng.RngRegistry` seed tree, and the structured
:class:`~repro.runtime.trace.TraceRecorder`.

All subsystems are *injected* with a context instead of self-wiring;
``continuum-lint`` (rule ``runtime-construction``) forbids direct
``Simulator()`` / ``EventBus()`` construction anywhere else. Two runs
built from contexts with the same seed produce byte-identical trace
exports — deterministic replay across every layer at once.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable

from repro.core.events import EventBus, Handler, Subscription
from repro.core.rng import RngRegistry, derive_seed
from repro.obs.metrics import METRICS_TOPIC, MetricsRegistry
from repro.obs.profiler import PROFILE_TOPIC
from repro.obs.spans import Tracer
from repro.runtime.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    import numpy as np

    from repro.continuum.simulator import Simulator


def _simulator_cls():
    # Imported lazily: repro.continuum imports repro.runtime at module
    # load, so a top-level import here would be circular.
    from repro.continuum.simulator import Simulator
    return Simulator


class TracedEventBus(EventBus):
    """Event bus that stamps every publish with the canonical sim time.

    Each :meth:`publish` appends a trace record *before* delivery, so
    even topics nobody subscribes to are visible on the shared timeline.
    When a causal span is active (:class:`~repro.obs.spans.Tracer`),
    its envelope is stamped onto the record, and when a metrics
    registry is attached every publish bumps the per-topic
    ``runtime.bus.publishes`` counter.
    """

    def __init__(self, clock: Callable[[], float], trace: TraceRecorder,
                 tracer: "Tracer | None" = None,
                 metrics: "MetricsRegistry | None" = None):
        super().__init__()
        self._clock = clock
        self._trace = trace
        # Bound once at construction so the hot path below pays plain
        # attribute loads, not conditional registry lookups.
        self._span_stack = tracer._stack if tracer is not None else None
        self._publish_counter = metrics.counter(
            "runtime.bus.publishes", "bus publishes by topic",
            label_key="topic") if metrics is not None else None
        #: Monotonic per-bus publish id, and the id of the publish
        #: currently being delivered. Relay taps key their dedup and
        #: suppression on these — unlike the trace sequence, a publish
        #: id is stable for the whole delivery even when a handler
        #: records spans or publishes nested messages mid-dispatch.
        self.pub_seq = 0
        self.current_pub = 0

    def publish(self, topic: str, payload: Any = None) -> int:  # perf: hot
        self.pub_seq = pub = self.pub_seq + 1
        stack = self._span_stack
        self._trace.record(self._clock(), topic, payload,
                           stack[-1].envelope if stack else None)
        counter = self._publish_counter
        if counter is not None:
            counter.value += 1
            labels = counter.labels
            labels[topic] = labels.get(topic, 0) + 1
        prev = self.current_pub
        self.current_pub = pub
        try:
            return super().publish(topic, payload)
        finally:
            self.current_pub = prev


class RuntimeContext:
    """Owns the simulator, event bus, RNG seed tree and trace recorder."""

    def __init__(self, seed: int = 0, start_time: float = 0.0,
                 trace_capacity: int = 65536,
                 sim: "Simulator | None" = None):
        self.seed = int(seed)
        self.sim: "Simulator" = (sim if sim is not None
                                 else _simulator_cls()(start_time))
        self.rng = RngRegistry(self.seed)
        self.trace = TraceRecorder(capacity=trace_capacity)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.rng.python("obs.tracer"),
                             lambda: self.sim.now, self.trace)
        self.bus: EventBus = TracedEventBus(
            lambda: self.sim.now, self.trace, self.tracer, self.metrics)
        self._register_core_metrics()

    @classmethod
    def adopt(cls, obj: "RuntimeContext | Simulator | None" = None, *,
              seed: int = 0) -> "RuntimeContext":
        """THE context-injection surface: normalize *obj* to a context.

        Every public constructor that takes ``ctx=`` routes it through
        here. An existing :class:`RuntimeContext` is returned as-is (no
        copy — subsystems built from the same context share one clock,
        bus, RNG tree and trace); a bare
        :class:`~repro.continuum.simulator.Simulator` is wrapped in a
        fresh context on that clock (legacy injection style); ``None``
        yields a fresh context seeded with *seed*.

        This replaces the PR-2 ``ensure_context``/``as_simulator`` dual
        path; those helpers now delegate here and emit
        ``DeprecationWarning``.
        """
        if isinstance(obj, cls):
            return obj
        if obj is None:
            return cls(seed=seed)
        if isinstance(obj, _simulator_cls()):
            return cls(seed=seed, sim=obj)
        raise TypeError(
            f"expected RuntimeContext, Simulator or None, got "
            f"{type(obj).__name__}")

    def _register_core_metrics(self) -> None:
        """Pull-style gauges over the spine's own counters."""
        self.metrics.gauge_callback(
            "continuum.sim.events_executed",
            lambda: self.sim.processed_events,
            "DES events executed by the canonical simulator")
        self.metrics.gauge_callback(
            "runtime.trace.records", lambda: len(self.trace),
            "trace records currently retained")
        self.metrics.gauge_callback(
            "runtime.trace.dropped", lambda: self.trace.dropped_count,
            "trace records evicted by the ring bound")
        self.metrics.gauge_callback(
            "runtime.tracer.spans", lambda: self.tracer.spans_recorded,
            "causal spans recorded")

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Canonical simulated time in seconds."""
        return self.sim.now

    def run(self, until: Any = None) -> Any:
        """Advance the canonical clock (delegates to the simulator)."""
        return self.sim.run(until)

    # -- bus ---------------------------------------------------------------

    def publish(self, topic: str, payload: Any = None) -> int:
        """Publish on the shared bus (traced, time-stamped)."""
        return self.bus.publish(topic, payload)

    def subscribe(self, pattern: str, handler: Handler) -> Subscription:
        """Subscribe on the shared bus."""
        return self.bus.subscribe(pattern, handler)

    # -- rng spine ---------------------------------------------------------

    def python_rng(self, name: str) -> "random.Random":
        """Named, independently seeded ``random.Random`` stream."""
        return self.rng.python(name)

    def numpy_rng(self, name: str) -> "np.random.Generator":
        """Named, independently seeded numpy generator stream."""
        return self.rng.numpy(name)

    def fork(self, name: str) -> "RuntimeContext":
        """Child context: same clock/bus/trace, derived RNG subtree.

        Use when a subsystem needs its own seed lineage while staying on
        the shared timeline.
        """
        child = object.__new__(RuntimeContext)
        child.seed = derive_seed(self.seed, name)
        child.sim = self.sim
        child.rng = self.rng.fork(name)
        child.trace = self.trace
        child.bus = self.bus
        child.metrics = self.metrics
        child.tracer = self.tracer
        return child

    # -- observability -----------------------------------------------------

    def snapshot_observability(self) -> dict[str, Any]:
        """Embed metric (and profiler) snapshots in the trace.

        Appends an ``obs.metrics`` record with the full registry payload
        and, when a :class:`~repro.obs.profiler.DesProfiler` is
        installed on the simulator, an ``obs.profile`` record — so one
        exported JSONL carries spans, events, metrics and profile, and
        ``repro-obs`` needs nothing but the file. Returns the snapshot
        (same ``{"metrics": ..., "profile": ...}`` shape the sharded
        backends' ``snapshot_observability`` produces).
        """
        snapshot: dict[str, Any] = {"metrics": self.metrics.to_payload()}
        self.trace.record(self.now, METRICS_TOPIC, snapshot["metrics"])
        profiler = getattr(self.sim, "_profiler", None)
        if profiler is not None:
            snapshot["profile"] = profiler.to_payload()
            self.trace.record(self.now, PROFILE_TOPIC,
                              snapshot["profile"])
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RuntimeContext(seed={self.seed}, now={self.now}, "
                f"trace={len(self.trace)} records)")


def ensure_context(obj: Any = None, *, seed: int = 0) -> RuntimeContext:
    """Deprecated: use :meth:`RuntimeContext.adopt` instead."""
    warnings.warn(
        "ensure_context() is deprecated; use RuntimeContext.adopt()",
        DeprecationWarning, stacklevel=2)
    return RuntimeContext.adopt(obj, seed=seed)


def as_simulator(obj: Any) -> "Simulator":
    """Deprecated: use ``RuntimeContext.adopt(obj).sim`` instead."""
    warnings.warn(
        "as_simulator() is deprecated; use RuntimeContext.adopt(obj).sim",
        DeprecationWarning, stacklevel=2)
    if isinstance(obj, RuntimeContext):
        return obj.sim
    return obj
