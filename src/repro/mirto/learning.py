"""Learning strategies of the MIRTO Manager (the KCL contribution).

* **Federated learning** — FedAvg and FedProx over small numpy models,
  "combining learned models from different agents ... allowing MIRTO
  edge agents to evolve based on each other's experiences" (Sec. IV).
  The canonical use is the operating-point model: each FPGA edge agent
  learns to predict task latency from (megaops, operating-point
  perf-scale, utilization) on its local traffic, and federation lets
  agents generalize to workload regions they never saw locally.

* **Q-learning** — the Network Manager's "Reinforcement Learning-based
  strategy" (Sec. VI): a tabular agent deciding offload/route actions
  from discretized congestion observations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError


class LinearModel:
    """Ridge-regularized linear model trained by gradient descent.

    Small on purpose: federated rounds exchange a handful of floats,
    matching what constrained edge agents can afford.
    """

    def __init__(self, n_features: int, l2: float = 1e-4):
        if n_features < 1:
            raise ConfigurationError("model needs at least one feature")
        self.weights = np.zeros(n_features + 1)  # bias last
        self.l2 = l2

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(features)
        return x @ self.weights[:-1] + self.weights[-1]

    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        err = self.predict(features) - targets
        return float(np.mean(err ** 2) + self.l2
                     * np.sum(self.weights ** 2))

    def gradient_step(self, features: np.ndarray, targets: np.ndarray,
                      lr: float = 0.05,
                      prox_center: np.ndarray | None = None,
                      prox_mu: float = 0.0) -> None:
        """One gradient step; FedProx adds a proximal pull to the
        global weights."""
        x = np.atleast_2d(features)
        err = self.predict(x) - targets
        grad_w = 2 * (x.T @ err) / len(err) + 2 * self.l2 \
            * self.weights[:-1]
        grad_b = 2 * float(np.mean(err)) + 2 * self.l2 * self.weights[-1]
        grad = np.concatenate([grad_w, [grad_b]])
        if prox_center is not None and prox_mu > 0:
            grad = grad + prox_mu * (self.weights - prox_center)
        self.weights = self.weights - lr * grad

    def get_weights(self) -> np.ndarray:
        return self.weights.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        if weights.shape != self.weights.shape:
            raise ConfigurationError("weight shape mismatch")
        self.weights = weights.copy()


@dataclass
class FederatedClient:
    """One edge agent's local model plus its private dataset."""

    name: str
    model: LinearModel
    features: np.ndarray
    targets: np.ndarray

    def local_epochs(self, epochs: int, lr: float,
                     global_weights: np.ndarray | None = None,
                     prox_mu: float = 0.0) -> None:
        for _ in range(epochs):
            self.model.gradient_step(self.features, self.targets, lr,
                                     prox_center=global_weights,
                                     prox_mu=prox_mu)

    def local_loss(self) -> float:
        return self.model.loss(self.features, self.targets)


@dataclass
class FederationRound:
    """Metrics of one federated round."""

    round_index: int
    mean_client_loss: float
    global_weights_norm: float


class FederatedTrainer:
    """FedAvg / FedProx coordinator across MIRTO edge agents."""

    def __init__(self, clients: list[FederatedClient],
                 algorithm: str = "fedavg", prox_mu: float = 0.1):
        if not clients:
            raise ConfigurationError("federation needs clients")
        if algorithm not in ("fedavg", "fedprox"):
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        shapes = {c.model.weights.shape for c in clients}
        if len(shapes) != 1:
            raise ConfigurationError("client models must share a shape")
        self.clients = clients
        self.algorithm = algorithm
        self.prox_mu = prox_mu
        self.global_weights = clients[0].model.get_weights() * 0.0
        self.history: list[FederationRound] = []

    def round(self, local_epochs: int = 5, lr: float = 0.05) -> float:
        """One federated round; returns the mean post-round loss."""
        for client in self.clients:
            client.model.set_weights(self.global_weights)
            client.local_epochs(
                local_epochs, lr,
                global_weights=(self.global_weights
                                if self.algorithm == "fedprox" else None),
                prox_mu=self.prox_mu if self.algorithm == "fedprox"
                else 0.0)
        # Weighted average by dataset size (FedAvg aggregation).
        total = sum(len(c.targets) for c in self.clients)
        aggregate = np.zeros_like(self.global_weights)
        for client in self.clients:
            aggregate += client.model.get_weights() \
                * (len(client.targets) / total)
        self.global_weights = aggregate
        for client in self.clients:
            client.model.set_weights(self.global_weights)
        mean_loss = float(np.mean([c.local_loss()
                                   for c in self.clients]))
        self.history.append(FederationRound(
            round_index=len(self.history),
            mean_client_loss=mean_loss,
            global_weights_norm=float(np.linalg.norm(
                self.global_weights))))
        return mean_loss

    def train(self, rounds: int, local_epochs: int = 5,
              lr: float = 0.05) -> list[float]:
        """Run several rounds; returns the loss trajectory."""
        return [self.round(local_epochs, lr) for _ in range(rounds)]

    def global_model(self, n_features: int) -> LinearModel:
        model = LinearModel(n_features)
        model.set_weights(self.global_weights)
        return model


def make_operating_point_dataset(rng: np.random.Generator, samples: int,
                                 perf_scales: tuple[float, ...] = (
                                     0.5, 1.0, 1.4),
                                 megaops_range: tuple[float, float] = (
                                     10.0, 2000.0),
                                 noise: float = 0.02
                                 ) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic (features, latency) data for the operating-point model.

    Ground truth: latency = megaops / (gops * perf_scale) with queueing
    inflation from utilization — the same model the devices use, so a
    well-trained predictor genuinely helps the Node Manager.
    """
    megaops = rng.uniform(*megaops_range, samples)
    perf = rng.choice(perf_scales, samples)
    utilization = rng.uniform(0.0, 0.9, samples)
    base_gops = 2.0
    latency = (megaops / 1e3) / (base_gops * perf) \
        * (1.0 + 2.0 * utilization)
    latency = latency * (1 + rng.normal(0, noise, samples))
    features = np.stack([megaops / 1e3, 1.0 / perf, utilization], axis=1)
    return features, latency


class QLearningAgent:
    """Tabular Q-learning (the Network Manager's RL strategy)."""

    def __init__(self, n_states: int, n_actions: int, rng: random.Random,
                 alpha: float = 0.2, gamma: float = 0.9,
                 epsilon: float = 0.2, epsilon_decay: float = 0.995):
        if n_states < 1 or n_actions < 1:
            raise ConfigurationError("need states and actions")
        self.n_states = n_states
        self.n_actions = n_actions
        self.rng = rng
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.q = [[0.0] * n_actions for _ in range(n_states)]

    def act(self, state: int, explore: bool = True) -> int:
        """Epsilon-greedy action selection."""
        if explore and self.rng.random() < self.epsilon:
            return self.rng.randrange(self.n_actions)
        row = self.q[state]
        best = max(row)
        candidates = [a for a, v in enumerate(row) if v == best]
        return candidates[0]

    def learn(self, state: int, action: int, reward: float,
              next_state: int) -> None:
        """One Bellman update."""
        best_next = max(self.q[next_state])
        target = reward + self.gamma * best_next
        self.q[state][action] += self.alpha \
            * (target - self.q[state][action])
        self.epsilon *= self.epsilon_decay

    def policy(self) -> list[int]:
        """Greedy action per state."""
        return [self.act(s, explore=False) for s in range(self.n_states)]
