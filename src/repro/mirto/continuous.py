"""Execution-time orchestration: periodic services with live re-placement.

Paper Sec. IV: "MIRTO cognitive engine is responsible for high-level
continuum orchestration both at deployment time (when a computation
request is issued) and at execution time (while tasks are already
running)", and CH2 demands applications be "dynamically updated for
continuous optimization". This module adds the execution-time half: a
:class:`ContinuousDeployment` runs an application periodically; after
each period the engine compares the measured KPIs against the current
placement's promise and against a re-optimized candidate, migrating when
the predicted improvement exceeds a hysteresis threshold (migration has
a cost, so flapping must not pay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.continuum.infrastructure import Infrastructure
from repro.continuum.workload import Application
from repro.mirto.placement import (
    ExecutionReport,
    Placement,
    PlacementConstraints,
    PlacementRequest,
    estimate_placement_kpis,
    execute_placement,
    make_strategy,
)


@dataclass
class PeriodRecord:
    """KPIs of one execution period."""

    period: int
    makespan_s: float
    energy_j: float
    migrated: bool
    placement: dict[str, str]


@dataclass
class MigrationPolicy:
    """When is moving worth it?

    ``improvement_threshold`` is the fractional predicted latency gain
    required before migrating; ``migration_cost_s`` models state
    transfer / container restart, charged to the period that migrates.
    """

    improvement_threshold: float = 0.15
    migration_cost_s: float = 0.020
    replan_strategy: str = "greedy"


class ContinuousDeployment:
    """One long-running service under execution-time orchestration."""

    def __init__(self, application: Application,
                 infrastructure: Infrastructure,
                 constraints: PlacementConstraints | None = None,
                 policy: MigrationPolicy | None = None,
                 rng: random.Random | None = None):
        self.application = application
        self.infrastructure = infrastructure
        self.ctx = infrastructure.ctx
        self.constraints = constraints or PlacementConstraints()
        self.policy = policy or MigrationPolicy()
        self.rng = rng or self.ctx.rng.python("mirto.continuous")
        self.history: list[PeriodRecord] = []
        initial = make_strategy(self.policy.replan_strategy, self.rng)
        self.placement = initial.solve(PlacementRequest(
            application=application, infrastructure=infrastructure,
            constraints=self.constraints)).placement
        self.migrations = 0

    def _candidate(self) -> Placement:
        """Re-optimize against the current infrastructure state."""
        strategy = make_strategy(self.policy.replan_strategy, self.rng)
        request = PlacementRequest(
            application=self.application,
            infrastructure=self.infrastructure,
            constraints=self.constraints)
        return strategy.solve(request).placement

    def run_period(self) -> PeriodRecord:
        """Execute one period, then consider migrating for the next."""
        report = execute_placement(
            self.application, self.placement, self.infrastructure,
            source_device=self.constraints.source_device)
        migrated = self._maybe_migrate(report)
        record = PeriodRecord(
            period=len(self.history),
            makespan_s=report.makespan_s,
            energy_j=report.energy_j,
            migrated=migrated,
            placement=dict(self.placement.assignment),
        )
        self.history.append(record)
        return record

    def _maybe_migrate(self, report: ExecutionReport) -> bool:
        candidate = self._candidate()
        if candidate.assignment == self.placement.assignment:
            return False
        current_est, _ = estimate_placement_kpis(
            self.application, self.placement, self.infrastructure,
            self.constraints.source_device)
        candidate_est, _ = estimate_placement_kpis(
            self.application, candidate, self.infrastructure,
            self.constraints.source_device)
        gain = (current_est - candidate_est) / max(current_est, 1e-12)
        if gain < self.policy.improvement_threshold:
            return False
        # Pay the migration cost in simulated time.
        sim = self.infrastructure.sim
        sim.run(until=sim.now + self.policy.migration_cost_s)
        for task_name, new_device in candidate.assignment.items():
            old_device = self.placement.assignment[task_name]
            if old_device != new_device:
                self.infrastructure.record_offload(old_device, new_device)
        self.placement = Placement(candidate.assignment,
                                   f"{candidate.strategy}+migrated")
        self.migrations += 1
        self.ctx.publish("mirto.continuous.migrated", {
            "application": self.application.name,
            "period": len(self.history),
            "assignment": dict(sorted(candidate.assignment.items())),
            "predicted_gain": gain,
        })
        return True

    def mean_makespan(self, last: int | None = None) -> float:
        """Mean makespan over the last *last* periods (or all)."""
        window = self.history[-last:] if last else self.history
        if not window:
            return 0.0
        return sum(r.makespan_s for r in window) / len(window)


def run_with_interference(deployment: ContinuousDeployment,
                          periods: int,
                          interfere_at: int | None = None,
                          interference_device: str | None = None,
                          interference_megaops: float = 5000.0,
                          interference_tasks: int = 12
                          ) -> list[PeriodRecord]:
    """Drive *periods* periods, optionally injecting interference.

    From period *interfere_at* onwards, *interference_tasks* background
    feeder processes keep *interference_device* saturated (each feeder
    immediately re-submits work when its task finishes) — the sustained
    co-tenant load the execution-time orchestration should route around.
    The feeders stop once the last period completes.
    """
    from repro.continuum.workload import Task
    records = []
    state = {"on": False, "counter": 0}

    def feeder(device, tag):
        while state["on"]:
            state["counter"] += 1
            yield deployment.infrastructure.sim.process(device.execute(
                Task(f"interference-{tag}-{state['counter']}",
                     megaops=interference_megaops)))

    for period in range(periods):
        if interfere_at is not None and period == interfere_at \
                and interference_device is not None:
            state["on"] = True
            device = deployment.infrastructure.device(
                interference_device)
            sim = deployment.infrastructure.sim
            for i in range(interference_tasks):
                sim.process(feeder(device, i))
        records.append(deployment.run_period())
    state["on"] = False
    return records
