"""MIRTO Cognitive Engine (MYRTUS technical pillar 2).

High-level continuum orchestration: the MAPE-K loop
(:mod:`repro.mirto.mape`), the MIRTO Manager with its four drivers
(:mod:`repro.mirto.manager`), cognitive strategies — swarm placement
(:mod:`repro.mirto.swarm`, :mod:`repro.mirto.placement`), federated and
reinforcement learning (:mod:`repro.mirto.learning`) — the agent with
its API daemon (:mod:`repro.mirto.agent`), KB/deployment proxies
(:mod:`repro.mirto.proxies`) and the wired-up engine facade
(:mod:`repro.mirto.engine`).
"""

from repro.mirto.swarm import (
    AntColonyOptimizer,
    FireflyOptimizer,
    OptimizationTrace,
    ParticleSwarmOptimizer,
)
from repro.mirto.distributed import (
    DistributedLoadBalancer,
    GossipConsensus,
)
from repro.mirto.placement import (
    ExecutionReport,
    FireflyPlacement,
    GreedyPlacement,
    Placement,
    PlacementConstraints,
    PlacementRequest,
    PlacementResult,
    PlacementStrategy,
    PsoPlacement,
    AcoPlacement,
    RandomPlacement,
    RoundRobinPlacement,
    SolveBudget,
    SolveSession,
    SolveStats,
    eligible_devices,
    estimate_placement_kpis,
    execute_placement,
    make_strategy,
    placement_cost,
)
from repro.mirto.exact import ExactPlacement
from repro.mirto.portfolio import PortfolioPlacement
from repro.mirto.learning import (
    FederatedClient,
    FederatedTrainer,
    LinearModel,
    QLearningAgent,
    make_operating_point_dataset,
)
from repro.mirto.manager import (
    DeploymentOutcome,
    MirtoManager,
    NetworkManager,
    NodeManager,
    PrivacySecurityManager,
    WorkloadManager,
    service_to_application,
)
from repro.mirto.mape import LoopRecord, MapeLoop, PlannedAction, Trigger
from repro.mirto.agent import (
    ApiRequest,
    ApiResponse,
    MirtoAgent,
    NegotiationRecord,
)
from repro.mirto.proxies import (
    DeploymentProxy,
    KbProxy,
    container_to_pod_spec,
)
from repro.mirto.engine import CognitiveEngine, EngineConfig
from repro.mirto.continuous import (
    ContinuousDeployment,
    MigrationPolicy,
    PeriodRecord,
    run_with_interference,
)
from repro.mirto.swarm_rules import (
    DEFAULT_RULE,
    RuleBasedPlacement,
    evolve_placement_rule,
)

__all__ = [
    "AntColonyOptimizer", "FireflyOptimizer", "OptimizationTrace",
    "ParticleSwarmOptimizer", "DistributedLoadBalancer",
    "GossipConsensus",
    "ExecutionReport", "FireflyPlacement", "GreedyPlacement",
    "Placement", "PlacementConstraints", "PlacementRequest",
    "PlacementResult", "PlacementStrategy", "PsoPlacement",
    "AcoPlacement", "RandomPlacement", "RoundRobinPlacement",
    "SolveBudget", "SolveSession", "SolveStats", "eligible_devices",
    "estimate_placement_kpis", "execute_placement", "make_strategy",
    "placement_cost", "ExactPlacement", "PortfolioPlacement",
    "FederatedClient", "FederatedTrainer", "LinearModel",
    "QLearningAgent", "make_operating_point_dataset",
    "DeploymentOutcome", "MirtoManager", "NetworkManager", "NodeManager",
    "PrivacySecurityManager", "WorkloadManager", "service_to_application",
    "LoopRecord", "MapeLoop", "PlannedAction", "Trigger",
    "ApiRequest", "ApiResponse", "MirtoAgent", "NegotiationRecord",
    "DeploymentProxy", "KbProxy", "container_to_pod_spec",
    "CognitiveEngine", "EngineConfig",
    "ContinuousDeployment", "MigrationPolicy", "PeriodRecord",
    "run_with_interference", "DEFAULT_RULE", "RuleBasedPlacement",
    "evolve_placement_rule",
]
