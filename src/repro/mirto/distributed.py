"""Distributed optimization among MIRTO agents (paper Sec. IV).

"Variants of MIRTO agents will be developed using strategies based on
swarm-like intelligence, FL, and distributed optimization." This module
provides the distributed-optimization flavour, with no central
coordinator:

* :class:`GossipConsensus` — asynchronous gossip averaging over the
  agent connectivity graph, the primitive agents use to agree on global
  aggregates (mean utilization, total demand) from local observations;
* :class:`DistributedLoadBalancer` — dual-decomposition load balancing:
  each site iteratively adjusts a local *price* from its own
  overload/underload and shifts work towards cheaper neighbours, which
  provably drives the system towards the balanced allocation without
  anyone seeing the global state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import ConfigurationError


class GossipConsensus:
    """Randomized pairwise gossip averaging on a connectivity graph.

    Each round, random connected pairs average their values; all nodes
    converge to the global mean at a rate set by the graph's
    connectivity.
    """

    def __init__(self, graph: nx.Graph, rng: random.Random):
        if graph.number_of_nodes() < 2:
            raise ConfigurationError("gossip needs at least two agents")
        if not nx.is_connected(graph):
            raise ConfigurationError(
                "gossip graph must be connected to reach consensus")
        self.graph = graph
        self.rng = rng
        self.values: dict[str, float] = {}

    def set_values(self, values: dict[str, float]) -> None:
        missing = set(self.graph.nodes) - set(values)
        if missing:
            raise ConfigurationError(f"missing values for {missing}")
        self.values = dict(values)

    @property
    def true_mean(self) -> float:
        return sum(self.values.values()) / len(self.values)

    def round(self, exchanges: int | None = None) -> None:
        """One gossip round of random pairwise averaging."""
        edges = list(self.graph.edges)
        exchanges = exchanges or len(edges)
        for _ in range(exchanges):
            a, b = self.rng.choice(edges)
            average = (self.values[a] + self.values[b]) / 2
            self.values[a] = average
            self.values[b] = average

    def spread(self) -> float:
        """Max deviation from the mean — the convergence measure."""
        mean = self.true_mean
        return max(abs(v - mean) for v in self.values.values())

    def run_until(self, tolerance: float, max_rounds: int = 500) -> int:
        """Gossip until all agents are within *tolerance* of the mean."""
        for round_index in range(max_rounds):
            if self.spread() <= tolerance:
                return round_index
            self.round()
        raise ConfigurationError(
            f"gossip did not converge within {max_rounds} rounds")


@dataclass
class SiteState:
    """One site's local view in the distributed load balancer."""

    name: str
    capacity: float
    load: float
    price: float = 0.0


class DistributedLoadBalancer:
    """Dual-decomposition load balancing between neighbouring sites.

    Each site keeps a price ``lambda = max(0, lambda + step * (load -
    capacity_target))``; work flows across each edge proportionally to
    the price difference. Only neighbour prices are exchanged — no
    global state.
    """

    def __init__(self, graph: nx.Graph, rng: random.Random,
                 step: float = 0.05, flow_gain: float = 0.5):
        if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
            raise ConfigurationError(
                "balancer needs a connected graph of >=2 sites")
        self.graph = graph
        self.rng = rng
        self.step = step
        self.flow_gain = flow_gain
        self.sites: dict[str, SiteState] = {}
        self.rounds_run = 0

    def set_sites(self, capacities: dict[str, float],
                  loads: dict[str, float]) -> None:
        for name in self.graph.nodes:
            if name not in capacities or name not in loads:
                raise ConfigurationError(f"missing site state for {name}")
            if capacities[name] <= 0:
                raise ConfigurationError(
                    f"site {name}: capacity must be positive")
            self.sites[name] = SiteState(
                name=name, capacity=capacities[name], load=loads[name])

    def utilizations(self) -> dict[str, float]:
        return {name: site.load / site.capacity
                for name, site in self.sites.items()}

    def imbalance(self) -> float:
        """Max - min utilization across sites."""
        utils = list(self.utilizations().values())
        return max(utils) - min(utils)

    def round(self) -> float:
        """One price-update + flow exchange round; returns imbalance."""
        # Price update from purely local pressure (utilization - mean
        # target is unknown; each site targets its own capacity share).
        for site in self.sites.values():
            pressure = site.load / site.capacity
            site.price = max(0.0, site.price
                             + self.step * (pressure - 1.0))
        # Work flows along edges towards the lower-price side, scaled by
        # the receiving site's capacity so big sites absorb more.
        for a, b in self.graph.edges:
            site_a, site_b = self.sites[a], self.sites[b]
            gradient = (site_a.load / site_a.capacity
                        - site_b.load / site_b.capacity)
            if abs(gradient) < 1e-12:
                continue
            donor, receiver = (site_a, site_b) if gradient > 0 \
                else (site_b, site_a)
            flow = self.flow_gain * abs(gradient) \
                * min(donor.capacity, receiver.capacity) / 2
            flow = min(flow, donor.load)
            donor.load -= flow
            receiver.load += flow
        self.rounds_run += 1
        return self.imbalance()

    def balance(self, tolerance: float = 0.02,
                max_rounds: int = 500) -> int:
        """Run rounds until utilizations agree within *tolerance*."""
        for round_index in range(max_rounds):
            if self.imbalance() <= tolerance:
                return round_index
            self.round()
        raise ConfigurationError(
            f"load balancing did not converge within {max_rounds} "
            "rounds")
