"""Deadline-raced solver portfolio: exact vs. the swarm heuristics.

Races the exact branch-and-bound against PSO/ACO/firefly under one
deadline with deterministic round-robin ``step()`` interleaving — no
threads, so a run is a pure function of (seed, request). Semantics are
*parallel racing*: every lane receives the full budget, exactly as if
the backends ran concurrently, which is what makes the portfolio never
worse than the best single backend at equal budget. Each lane draws
from its own seed-tree RNG stream (``derive_seed(seed, backend)``), so
adding or removing a lane never perturbs the others.

Incumbents flow one way: every lane's improvements update the shared
best (with provenance), and the shared best is fed into the exact
lane's pruning bound via ``tighten()``. Metaheuristic lanes never see
foreign incumbents — injecting them would perturb RNG draw order and
break the equal-budget dominance argument; tightening a bound only
ever discards provably-dominated subtrees, so it is safe. When the
exact lane finishes its tree, the race stops early: the shared best at
that point is provably optimal.
"""

from __future__ import annotations

import random

from repro.core.errors import OrchestrationError
from repro.core.rng import derive_seed
from repro.mirto.exact import ExactPlacement
from repro.mirto.placement import (
    AcoPlacement,
    FireflyPlacement,
    Placement,
    PlacementRequest,
    PlacementResult,
    PlacementStrategy,
    PsoPlacement,
    SolveBudget,
    SolveSession,
    _DEFAULT_ENERGY_WEIGHT,
)

_SWARM_BACKENDS = {
    "pso": PsoPlacement,
    "aco": AcoPlacement,
    "firefly": FireflyPlacement,
}


class PortfolioPlacement(PlacementStrategy):
    """Anytime portfolio racing exact and metaheuristic backends."""

    name = "portfolio"

    DEFAULT_BACKENDS = ("exact", "pso", "aco", "firefly")

    def __init__(self, seed: int = 0,
                 backends: tuple[str, ...] = DEFAULT_BACKENDS,
                 energy_weight: float = _DEFAULT_ENERGY_WEIGHT,
                 iterations: int = 30,
                 default_budget: SolveBudget | None = None):
        if not backends:
            raise OrchestrationError("portfolio needs >= 1 backend")
        self.seed = seed
        self.backends = tuple(backends)
        self.energy_weight = energy_weight
        self.iterations = iterations
        #: Applied when the request's budget is unlimited — a race
        #: needs a finish line (50ms-equivalent on the DES clock).
        self.default_budget = default_budget \
            or SolveBudget(deadline_s=0.050)

    def backend(self, name: str) -> PlacementStrategy:
        """A lane's backend, freshly seeded from the portfolio's seed
        tree — also how tests build the standalone baseline a raced
        lane is compared against."""
        if name == "exact":
            return ExactPlacement(energy_weight=self.energy_weight)
        cls = _SWARM_BACKENDS.get(name)
        if cls is None:
            raise OrchestrationError(
                f"unknown portfolio backend {name!r}")
        rng = random.Random(
            derive_seed(self.seed, f"mirto.placement.{name}"))
        return cls(rng, energy_weight=self.energy_weight,
                   iterations=self.iterations)

    def session(self, request: PlacementRequest) -> SolveSession:
        return _PortfolioSession(self, request)


class _Lane:
    """One backend's slot in the race."""

    __slots__ = ("name", "session", "finished", "result")

    def __init__(self, name: str, session: SolveSession):
        self.name = name
        self.session = session
        self.finished = False
        self.result: PlacementResult | None = None


class _PortfolioSession(SolveSession):
    def __init__(self, strategy: PortfolioPlacement,
                 request: PlacementRequest):
        self._strategy = strategy
        self._request = request
        self._best: tuple[Placement, float, str] | None = None
        budget = request.budget if not request.budget.unlimited \
            else strategy.default_budget
        self._lanes = []
        for name in strategy.backends:
            lane_request = PlacementRequest(
                application=request.application,
                infrastructure=request.infrastructure,
                constraints=request.constraints,
                budget=budget,
                warm_start=request.warm_start,
                on_incumbent=self._lane_callback(name),
            )
            backend = strategy.backend(name)
            self._lanes.append(_Lane(name,
                                     backend.session(lane_request)))
        self._done = False

    def _lane_callback(self, lane_name: str):
        def on_incumbent(placement: Placement, cost: float,
                         backend: str) -> None:
            self._offer(placement, cost, lane_name)
        return on_incumbent

    def _offer(self, placement: Placement, cost: float,
               backend: str) -> None:
        if self._best is not None and cost >= self._best[1]:
            return
        self._best = (placement, cost, backend)
        request = self._request
        if request.on_incumbent is not None:
            request.on_incumbent(placement, cost, backend)
        request.infrastructure.ctx.publish(
            "mirto.placement.incumbent",
            {"backend": backend, "cost": cost})

    def _finish_lane(self, lane: _Lane) -> None:
        lane.finished = True
        lane.result = lane.session.result()
        self._offer(lane.result.placement, lane.result.cost, lane.name)

    def step(self) -> bool:
        if self._done:
            return False
        for lane in self._lanes:
            if lane.finished:
                continue
            if self._best is not None:
                tighten = getattr(lane.session, "tighten", None)
                if tighten is not None:
                    tighten(self._best[1])
            if not lane.session.step():
                self._finish_lane(lane)
                # A finished exact lane whose lower bound reaches the
                # shared best is a proof: the other lanes can only
                # rediscover it, so the race stops early.
                if lane.result.lower_bound >= self._best[1]:
                    for other in self._lanes:
                        if not other.finished:
                            self._finish_lane(other)
                    break
        self._done = all(lane.finished for lane in self._lanes)
        return not self._done

    def result(self) -> PlacementResult:
        if self._best is None:
            while self.step():
                pass
        for lane in self._lanes:
            if lane.result is None:
                lane.result = lane.session.result()
        placement, cost, backend = self._best
        stats = tuple(stat for lane in self._lanes
                      for stat in lane.result.stats)
        lower_bound = max(lane.result.lower_bound
                          for lane in self._lanes)
        return PlacementResult(
            placement=Placement(dict(placement.assignment),
                                self._strategy.name),
            cost=cost, optimal=cost <= lower_bound,
            lower_bound=lower_bound, provenance=backend, stats=stats)
