"""Rule-based swarm placement: FREVO-evolved local rules inside MIRTO.

Closes the loop the paper draws across pillars: "FREVO generates the
local rules for the swarm agents to be used within the MIRTO Cognitive
Engine" (Sec. V) and "Modelio is used to synthesize the swarm agents to
be included in the MIRTO Manager ... from the local rules". A
:class:`RuleBasedPlacement` strategy scores each eligible device with a
:class:`~repro.dpe.frevo.SwarmRule` over *locally observable* signals
(utilization, estimated latency, estimated energy, trust) — no global
optimization, just the swarm-agent decision rule — and
:func:`evolve_placement_rule` runs the FREVO loop with a simulation-
in-the-loop fitness (the DynAA role).
"""

from __future__ import annotations

import random

from repro.continuum.infrastructure import Infrastructure
from repro.continuum.workload import Application
from repro.dpe.frevo import RuleEvolver, SwarmRule
from repro.dpe.modeling import ScenarioModel
from repro.mirto.placement import (
    Placement,
    PlacementConstraints,
    PlacementRequest,
    PlacementStrategy,
    estimate_placement_kpis,
)

#: A sensible hand-written rule, the baseline evolution must beat.
DEFAULT_RULE = SwarmRule(
    utilization_weight=0.3,
    latency_weight=0.6,
    energy_weight=0.1,
    trust_weight=0.2,
    exploration=0.0,
)


class RuleBasedPlacement(PlacementStrategy):
    """Each task is placed by the swarm agent's local scoring rule.

    Unlike the PSO/ACO strategies, this performs *no* global search: it
    evaluates the rule once per (task, device) pair on local signals,
    which is what a decentralized swarm agent can afford.
    """

    name = "swarm-rule"

    def __init__(self, rule: SwarmRule | None = None,
                 rng: random.Random | None = None):
        self.rule = rule or DEFAULT_RULE
        self.rng = rng or random.Random(0)

    def _place(self, application, infrastructure, constraints) -> Placement:
        assignment: dict[str, str] = {}
        # Track load the swarm itself creates during this placement so
        # the utilization signal reflects its own earlier decisions.
        local_load: dict[str, float] = {
            name: device.utilization()
            for name, device in infrastructure.devices.items()
        }
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            if self.rule.exploration > 0 and \
                    self.rng.random() < self.rule.exploration:
                chosen = self.rng.choice(devices)
            else:
                def score(device):
                    latency = device.estimate_duration(task)
                    if constraints.source_device is not None and \
                            not application.predecessors(task.name) and \
                            constraints.source_device != device.name:
                        latency += infrastructure.network \
                            .estimate_transfer_time(
                                constraints.source_device, device.name,
                                task.input_bytes)
                    return self.rule.score(
                        utilization=local_load[device.name],
                        latency_s=latency,
                        energy_j=device.estimate_energy(task),
                        trust=constraints.trusted.get(device.name, 1.0),
                    )
                chosen = max(devices, key=lambda d: (score(d), d.name))
            assignment[task.name] = chosen.name
            # One queued task's worth of load on the chosen device.
            local_load[chosen.name] += 1.0 / max(1, chosen.spec.cores)
        return Placement(assignment, self.name)


def evolve_placement_rule(scenario: ScenarioModel,
                          infrastructure_factory,
                          seed: int = 0, generations: int = 12,
                          sessions_per_eval: int = 2
                          ) -> tuple[SwarmRule, float, RuleEvolver]:
    """FREVO loop: evolve rule weights against simulated KPIs.

    ``infrastructure_factory()`` must return a fresh
    :class:`Infrastructure` per evaluation (the DynAA simulation).
    Fitness is the negative mean estimated makespan over
    *sessions_per_eval* placements, so higher is better.
    """
    application = scenario.to_application()

    def fitness(rule: SwarmRule) -> float:
        infrastructure = infrastructure_factory()
        constraints = PlacementConstraints(
            min_security_level=scenario.min_security_level)
        strategy = RuleBasedPlacement(rule, random.Random(seed))
        total = 0.0
        for _ in range(sessions_per_eval):
            placement = strategy.solve(PlacementRequest(
                application=application,
                infrastructure=infrastructure,
                constraints=constraints)).placement
            latency, energy = estimate_placement_kpis(
                application, placement, infrastructure)
            total += latency + 0.05 * energy
        return -total / sessions_per_eval

    evolver = RuleEvolver(fitness, random.Random(seed),
                          generations=generations)
    best_rule, best_fitness = evolver.evolve()
    return best_rule, best_fitness, evolver
