"""The MIRTO Cognitive Engine facade: everything of Fig. 3 wired up.

Builds the full runtime stack over a continuum infrastructure — shared
KB (Raft), Resource Registry, per-layer MIRTO agents with peering, the
MAPE-K loop — and exposes the two entry points the benchmarks and
examples use: :meth:`CognitiveEngine.deploy` (full API path: token,
TOSCA validation, manager, execution) and :meth:`CognitiveEngine.mape_iterate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.continuum.devices import Layer
from repro.continuum.infrastructure import (
    Infrastructure,
    build_reference_infrastructure,
)
from repro.kb.registry import ComponentRecord, ResourceRegistry
from repro.runtime import RuntimeContext
from repro.kb.store import KnowledgeBase
from repro.mirto.agent import ApiRequest, ApiResponse, MirtoAgent
from repro.mirto.manager import MirtoManager
from repro.mirto.mape import MapeLoop
from repro.mirto.placement import SolveBudget, make_strategy
from repro.tosca.parser import dump_service_template
from repro.tosca.model import ServiceTemplate


@dataclass
class EngineConfig:
    """Knobs for building a cognitive engine."""

    edge_sites: int = 2
    fmdcs: int = 1
    cloud_servers: int = 2
    kb_replicas: int = 3
    default_strategy: str = "greedy"
    #: Anytime solver MAPE's Plan stage races for replanning advice
    #: after faults ("portfolio" by default; None disables replanning).
    plan_strategy: str | None = "portfolio"
    #: DES-clock deadline for each Plan-stage solve (50ms-equivalent
    #: would be a deploy-time budget; Plan runs on the loop cadence).
    plan_deadline_s: float = 0.010
    seed: int = 0


class CognitiveEngine:
    """One fully wired MIRTO deployment over a simulated continuum.

    The engine no longer self-wires a private simulator: it runs on a
    :class:`~repro.runtime.RuntimeContext` (the infrastructure's when
    one is supplied, else a fresh context seeded from the config), so
    MAPE transitions, placement decisions and KB consensus all share
    one clock, one bus and one seed tree with the rest of the system.
    """

    def __init__(self, config: EngineConfig | None = None,
                 infrastructure: Infrastructure | None = None,
                 ctx: RuntimeContext | None = None):
        self.config = config or EngineConfig()
        if infrastructure is not None:
            self.ctx = infrastructure.ctx
            self.infrastructure = infrastructure
        else:
            self.ctx = ctx or RuntimeContext(seed=self.config.seed)
            self.infrastructure = build_reference_infrastructure(
                self.ctx,
                edge_sites=self.config.edge_sites,
                fmdcs=self.config.fmdcs,
                cloud_servers=self.config.cloud_servers)
        self.sim = self.ctx.sim
        self.kb = KnowledgeBase(replicas=self.config.kb_replicas,
                                seed=self.config.seed, ctx=self.ctx)
        self.registry = ResourceRegistry(self.kb)
        self._register_components()
        self.manager = MirtoManager(
            self.infrastructure, self.registry,
            default_strategy=self.config.default_strategy,
            seed=self.config.seed)
        # One agent per layer, all peered (the Fig. 2 agent mesh).
        self.agents: dict[str, MirtoAgent] = {}
        for layer in Layer:
            agent = MirtoAgent(f"mirto-{layer.value}", layer.value,
                               self.manager)
            agent.auth.register_user("operator", ["operator"])
            self.agents[layer.value] = agent
        agents = list(self.agents.values())
        for i, a in enumerate(agents):
            for b in agents[i + 1:]:
                a.peer_with(b)
        planner = None
        if self.config.plan_strategy is not None:
            planner = make_strategy(
                self.config.plan_strategy,
                self.ctx.rng.python("mirto.mape.plan"))
        self.mape = MapeLoop(
            self.infrastructure, self.registry, self.manager,
            planner=planner,
            plan_budget=SolveBudget(
                deadline_s=self.config.plan_deadline_s))

    def _register_components(self) -> None:
        for device in self.infrastructure.devices.values():
            self.registry.register(ComponentRecord(
                name=device.name,
                kind=device.spec.kind.value,
                layer=device.spec.layer.value,
                max_security_level=device.spec.max_security_level,
                capabilities={
                    "cores": device.spec.cores,
                    "gops": device.spec.gops,
                    "kernels": sorted(k.value for k in
                                      device.spec.accel_kernels),
                },
            ))

    # -- API entry points ----------------------------------------------------------

    def agent(self, layer: str = "edge") -> MirtoAgent:
        return self.agents[layer]

    def operator_token(self, layer: str = "edge") -> bytes:
        return self.agents[layer].auth.issue_token("operator",
                                                   ttl_s=10_000.0)

    def deploy(self, service: ServiceTemplate, strategy: str | None = None,
               layer: str = "edge") -> ApiResponse:
        """Full Fig. 3 path: API daemon -> auth -> validation -> manager."""
        agent = self.agents[layer]
        request = ApiRequest(
            method="POST",
            path="/deployments",
            token=self.operator_token(layer),
            body={"tosca": dump_service_template(service),
                  "strategy": strategy},
        )
        return agent.handle(request)

    def mape_iterate(self, count: int = 1):
        """Run MAPE-K cycles; returns the records."""
        return [self.mape.iterate() for _ in range(count)]
