"""Exact placement: depth-first branch-and-bound with admissible bounds.

The search assigns devices to tasks in the application's topological
order, mirroring :func:`repro.mirto.placement.estimate_placement_kpis`
incrementally: because that estimator list-schedules tasks in a fixed
order, a prefix's finish times never change when the suffix is filled
in, so the prefix makespan/energy are exact and any completion costs at
least

``(1 - w) * max(prefix makespan, critical-path LB over remaining tasks)
+ w * (prefix energy + sum of per-task cheapest energies) / 100``

where the critical-path LB gives every unassigned task its
cheapest-feasible-device duration and ignores transfers and queueing —
dropping nonnegative terms keeps the bound admissible. Subtrees whose
bound reaches the incumbent are cut; an exhausted tree is a proof of
optimality. Under the anytime contract the session always finishes its
first depth-first dive (so there is always an incumbent), then honors
the node budget, reporting the root lower bound when stopped early.

The portfolio feeds foreign incumbents in through :meth:`tighten`:
pruning against a tighter bound only discards subtrees that cannot beat
the shared incumbent, so at any node count the raced exact lane is
never worse than a standalone run — it only reaches surviving leaves
sooner.
"""

from __future__ import annotations

import math

from repro.mirto.placement import (
    Placement,
    PlacementCostCache,
    PlacementRequest,
    PlacementResult,
    PlacementStrategy,
    SolveSession,
    SolveStats,
    _DEFAULT_ENERGY_WEIGHT,
    _warm_incumbent,
    placement_cost,
)

#: Sentinel for "device had no scheduled-free entry before this apply".
_MISSING = object()


class ExactPlacement(PlacementStrategy):
    """Branch-and-bound over task->device assignments.

    Proves optimality on small instances (roughly <= 8 services x 20
    devices) and behaves as an anytime solver beyond that: best
    incumbent at budget exhaustion, with the root lower bound reported.
    ``node_budget`` caps unbudgeted requests so an unlimited
    :class:`SolveBudget` cannot detonate on a large instance; an
    explicit request budget always wins.
    """

    name = "exact"

    def __init__(self, energy_weight: float = _DEFAULT_ENERGY_WEIGHT,
                 node_budget: int = 200_000, batch: int = 64):
        self.energy_weight = energy_weight
        self.node_budget = node_budget
        self.batch = batch
        self._cost_cache: PlacementCostCache | None = None

    def _cache_for(self, infrastructure) -> PlacementCostCache:
        cache = self._cost_cache
        if cache is None or cache.infrastructure is not infrastructure:
            cache = PlacementCostCache(infrastructure)
            self._cost_cache = cache
        return cache

    def session(self, request: PlacementRequest) -> SolveSession:
        return _ExactSession(self, request)


class _ExactSession(SolveSession):
    """One branch-and-bound run, steppable in ``batch``-node slices."""

    def __init__(self, strategy: ExactPlacement,
                 request: PlacementRequest):
        self._strategy = strategy
        self._request = request
        self._stats = SolveStats(backend=strategy.name)
        self._w = strategy.energy_weight
        limit = request.budget.node_limit()
        self._limit = strategy.node_budget if limit is None else limit
        app = request.application
        infra = request.infrastructure
        cache = strategy._cache_for(infra)
        cache.refresh()
        self._cache = cache
        self._source = request.constraints.source_device
        tasks = app.tasks
        self._tasks = tasks
        self._n = len(tasks)
        self._preds = {t.name: app.predecessors(t.name) for t in tasks}
        self._devices = infra.devices
        w = self._w
        # Children ordered by myopic per-task score so the first dive
        # is greedy-ish and the incumbent tightens the bound early.
        self._options = []
        for task in tasks:
            devices = strategy._eligible_or_raise(task, infra,
                                                  request.constraints)
            devices.sort(key=lambda d: (
                (1 - w) * cache.duration(d, task)
                + w * cache.energy(d, task) / 100.0, d.name))
            self._options.append(devices)
        self._min_dur = [
            min(cache.duration(d, t) for d in opts)
            for t, opts in zip(tasks, self._options)]
        suffix = [0.0] * (self._n + 1)
        for i in range(self._n - 1, -1, -1):
            suffix[i] = suffix[i + 1] + min(
                cache.energy(d, tasks[i]) for d in self._options[i])
        self._suffix_energy = suffix
        # Incremental list-schedule state (undone on backtrack).
        self._assignment: dict[str, str] = {}
        self._finish: dict[str, float] = {}
        self._device_free: dict[str, float] = {}
        self._prefix_mk = [0.0] * (self._n + 1)
        self._prefix_en = [0.0] * (self._n + 1)
        self._choice = [-1] * self._n
        self._undo: list[tuple | None] = [None] * self._n
        self._depth = 0
        self._bound = math.inf
        self._best: tuple[Placement, float] | None = None
        self._complete = self._n == 0
        self._done = self._complete
        self._root_lb = self._lower_bound(-1, 0.0, 0.0, None, 0.0)
        warm = _warm_incumbent(request, self._w, cache)
        if warm is not None:
            self._accept(warm[0], warm[1])

    # -- incumbents ---------------------------------------------------------

    def _accept(self, placement: Placement, cost: float) -> None:
        if cost < self._bound:
            self._bound = cost
        if self._best is None or cost < self._best[1]:
            self._best = (placement, cost)
            self._stats.incumbents += 1
            self._stats.best_cost = cost
            callback = self._request.on_incumbent
            if callback is not None:
                callback(placement, cost, self._strategy.name)

    def tighten(self, bound: float) -> None:
        """Adopt a foreign incumbent's cost as a pruning bound."""
        if bound < self._bound:
            self._bound = bound

    # -- scheduling arithmetic (mirrors estimate_placement_kpis) ------------

    def _schedule(self, depth: int, device) -> tuple[float, float, float]:
        """(finish, prefix makespan, prefix energy) if *device* runs
        the depth-th task, without mutating state."""
        cache = self._cache
        task = self._tasks[depth]
        device_name = device.name
        ready = 0.0
        preds = self._preds[task.name]
        if not preds and self._source is not None \
                and self._source != device_name:
            ready = cache.transfer(self._source, device_name,
                                   task.input_bytes)
        app = self._request.application
        for pred in preds:
            arrival = self._finish[pred]
            pred_device = self._assignment[pred]
            if pred_device != device_name:
                arrival += cache.transfer(pred_device, device_name,
                                          app.edge_bytes(pred,
                                                         task.name))
            if arrival > ready:
                ready = arrival
        free = self._device_free.get(device_name)
        if free is None:
            free = device.backlog_seconds()
        start = ready if ready > free else free
        end = start + cache.duration(device, task)
        makespan = self._prefix_mk[depth]
        if end > makespan:
            makespan = end
        energy = self._prefix_en[depth] + cache.energy(device, task)
        return end, makespan, energy

    def _lower_bound(self, depth: int, makespan: float, energy: float,
                     candidate_task: str | None,
                     candidate_end: float) -> float:
        """Admissible bound on any completion of the current prefix
        plus the candidate assignment at *depth* (not yet applied)."""
        finish = self._finish
        future = {} if candidate_task is None \
            else {candidate_task: candidate_end}
        lb_makespan = makespan
        for j in range(depth + 1, self._n):
            task = self._tasks[j]
            ready = 0.0
            for pred in self._preds[task.name]:
                at = finish.get(pred)
                if at is None:
                    at = future[pred]
                if at > ready:
                    ready = at
            end = ready + self._min_dur[j]
            future[task.name] = end
            if end > lb_makespan:
                lb_makespan = end
        return (1 - self._w) * lb_makespan \
            + self._w * (energy + self._suffix_energy[depth + 1]) / 100.0

    # -- DFS state machine --------------------------------------------------

    def _apply(self, depth: int, device, end: float, makespan: float,
               energy: float) -> None:
        task_name = self._tasks[depth].name
        device_name = device.name
        prev_free = self._device_free.get(device_name, _MISSING)
        self._device_free[device_name] = end
        self._finish[task_name] = end
        self._assignment[task_name] = device_name
        self._prefix_mk[depth + 1] = makespan
        self._prefix_en[depth + 1] = energy
        self._undo[depth] = (task_name, device_name, prev_free)

    def _revert(self, depth: int) -> None:
        task_name, device_name, prev_free = self._undo[depth]
        if prev_free is _MISSING:
            del self._device_free[device_name]
        else:
            self._device_free[device_name] = prev_free
        del self._finish[task_name]
        del self._assignment[task_name]
        self._undo[depth] = None

    def _leaf(self) -> None:
        # Leaf cost comes from the shared estimator + cache, not the
        # incremental prefix, so reported costs are bit-identical to
        # what every other backend computes for the same assignment.
        self._stats.evaluations += 1
        cost = placement_cost(
            self._request.application, self._request.infrastructure,
            self._assignment, strategy=self._strategy.name,
            source_device=self._source, cache=self._cache,
            energy_weight=self._w)
        if cost < self._bound or self._best is None:
            self._accept(Placement(dict(self._assignment),
                                   self._strategy.name), cost)

    def _advance_one(self) -> bool:
        """One DFS move (try a candidate, or backtrack one level);
        False once the whole tree is exhausted."""
        depth = self._depth
        if depth < 0:
            return False
        if self._undo[depth] is not None:
            self._revert(depth)
        options = self._options[depth]
        index = self._choice[depth] + 1
        if index >= len(options):
            self._choice[depth] = -1
            self._depth = depth - 1
            return self._depth >= 0
        self._choice[depth] = index
        self._stats.nodes += 1
        device = options[index]
        end, makespan, energy = self._schedule(depth, device)
        lb = self._lower_bound(depth, makespan, energy,
                               self._tasks[depth].name, end)
        if lb >= self._bound:
            self._stats.pruned += 1
            return True
        self._apply(depth, device, end, makespan, energy)
        if depth + 1 == self._n:
            self._leaf()
            self._revert(depth)
            return True
        self._depth = depth + 1
        self._choice[self._depth] = -1
        return True

    def step(self) -> bool:
        if self._done:
            return False
        self._stats.steps += 1
        start = self._stats.nodes
        batch = self._strategy.batch
        while True:
            # The first dive always completes (an anytime solver must
            # hold an incumbent); after that the node budget rules.
            if self._best is not None \
                    and self._stats.nodes >= self._limit:
                self._done = True
                return False
            if not self._advance_one():
                self._complete = True
                self._done = True
                return False
            if self._stats.nodes - start >= batch:
                return True

    def result(self) -> PlacementResult:
        if self._best is None:
            while self.step():
                pass
        placement, cost = self._best
        if self._complete:
            # Exhausted tree: nothing costs less than the final bound
            # (pruned subtrees had lb >= a bound that only ever
            # tightened toward this one).
            lower_bound = self._bound
        else:
            lower_bound = self._root_lb
        optimal = cost <= lower_bound
        self._stats.lower_bound = lower_bound
        self._stats.proven_optimal = optimal
        return PlacementResult(
            placement=placement, cost=cost, optimal=optimal,
            lower_bound=lower_bound, provenance=self._strategy.name,
            stats=(self._stats,))
