"""Workload placement: the decision problem the MIRTO WL Manager solves.

Given an application DAG, the infrastructure, and the constraints the
TOSCA policies impose (privacy layer ceilings, security floors, memory,
latency SLOs), choose a device for every task. Implements the baselines
the paper's cognitive claims are measured against (random, round-robin,
greedy) and the cognitive strategies (PSO, ACO, firefly over the
constrained assignment space). :func:`execute_placement` then actually
runs the placed application in the discrete-event simulator and reports
measured KPIs — so strategy comparisons in the benchmarks are
simulation-backed, not analytic-only.

Solvers implement an *anytime* contract: callers build a
:class:`PlacementRequest` (problem + deterministic work budget + warm
start) and get a :class:`PlacementResult` (best placement, cost, lower
bound, optimality flag, per-backend :class:`SolveStats`) from
:meth:`PlacementStrategy.solve`. Budgets live on the DES clock — a
deadline converts to a node allowance via the modeled per-node cost —
so identical seeds and budgets produce byte-identical results on any
machine. ``place()`` survives as a deprecated shim over ``solve()``.
The exact branch-and-bound backend lives in :mod:`repro.mirto.exact`
and the deadline-raced portfolio in :mod:`repro.mirto.portfolio`.
"""

from __future__ import annotations

import json
import math
import random
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ConfigurationError, OrchestrationError
from repro.continuum.devices import Device, Layer
from repro.continuum.infrastructure import Infrastructure
from repro.continuum.workload import Application, PrivacyClass, Task
from repro.mirto.swarm import (
    AntColonyOptimizer,
    FireflyOptimizer,
    ParticleSwarmOptimizer,
)

_LAYER_ORDER = [Layer.EDGE, Layer.FOG, Layer.CLOUD]
_SECURITY_RANK = {"low": 0, "medium": 1, "high": 2}


@dataclass
class PlacementConstraints:
    """Constraints distilled from TOSCA policies for one application."""

    min_security_level: str = "low"
    source_device: str | None = None  # where input data originates
    trust_threshold: float = 0.0
    trusted: dict[str, float] = field(default_factory=dict)

    def max_layer_for(self, task: Task) -> Layer:
        privacy = task.requirements.privacy
        if privacy is PrivacyClass.RAW_PERSONAL:
            return Layer.EDGE
        if privacy is PrivacyClass.AGGREGATED:
            return Layer.FOG
        return Layer.CLOUD


def eligible_devices(task: Task, infrastructure: Infrastructure,
                     constraints: PlacementConstraints) -> list[Device]:
    """Devices satisfying every hard constraint for *task*."""
    ceiling = _LAYER_ORDER.index(constraints.max_layer_for(task))
    need_security = max(
        _SECURITY_RANK[constraints.min_security_level],
        _SECURITY_RANK.get(task.requirements.min_security_level, 0))
    latency_budget = task.requirements.latency_budget_s
    result = []
    for device in infrastructure.devices.values():
        if getattr(device, "failed", False):
            continue
        if _LAYER_ORDER.index(device.spec.layer) > ceiling:
            continue
        if _SECURITY_RANK[device.spec.max_security_level] < need_security:
            continue
        if device.spec.memory_bytes < task.memory_bytes:
            continue
        trust = constraints.trusted.get(device.name, 1.0)
        if trust < constraints.trust_threshold:
            continue
        if latency_budget != math.inf:
            # Latency-SLO feasibility: a device that cannot run the
            # task within its budget even at its fastest operating
            # point can never satisfy the SLO, whatever the schedule
            # around it does. Judged at peak (not the active point) so
            # MAPE keeping a device in low-power mode doesn't shrink
            # the feasible set the optimizers search.
            fastest = max(device.operating_points.values(),
                          key=lambda op: op.perf_scale)
            if device.estimate_duration(task, fastest.name) \
                    > latency_budget:
                continue
        result.append(device)
    return result


@dataclass
class Placement:
    """A complete task-to-device assignment."""

    assignment: dict[str, str]
    strategy: str

    def device_of(self, task_name: str) -> str:
        return self.assignment[task_name]


class PlacementCostCache:
    """Memoized per-(task, device, operating-point) cost terms.

    The analytic KPI model is built from three pure terms — task
    duration on a device, task energy on a device, and network transfer
    time between two hosts — all of which are invariant while the
    infrastructure's topology and fault state hold still. Swarm
    optimizers evaluate thousands of candidate assignments over the
    same few hundred distinct terms, so memoizing them turns
    :func:`estimate_placement_kpis` incremental.

    Validity is keyed on :attr:`Infrastructure.generation`: the cache
    self-invalidates whenever devices/links were added or a fault
    failed/repaired a device. Operating-point switches need no
    generation bump because the active point's name is part of every
    duration/energy key.
    """

    def __init__(self, infrastructure: Infrastructure):
        self.infrastructure = infrastructure
        self._generation = infrastructure.generation
        self._duration: dict[tuple, float] = {}
        self._energy: dict[tuple, float] = {}
        self._transfer: dict[tuple, float] = {}
        metrics = infrastructure.ctx.metrics
        self._hits = metrics.counter(
            "mirto.placement.cache_hits", "memoized cost-term hits")
        self._misses = metrics.counter(
            "mirto.placement.cache_misses", "cost terms computed fresh")

    def refresh(self) -> None:
        """Drop every memoized term if the infrastructure changed."""
        generation = self.infrastructure.generation
        if generation != self._generation:
            self._duration.clear()
            self._energy.clear()
            self._transfer.clear()
            self._generation = generation

    @staticmethod
    def _task_key(device: Device, task: Task) -> tuple:
        return (device.name, device.operating_point.name, task.megaops,
                task.input_bytes, task.output_bytes, task.kernel)

    def duration(self, device: Device, task: Task) -> float:  # perf: hot
        key = self._task_key(device, task)
        value = self._duration.get(key)
        if value is None:
            value = device.estimate_duration(task)
            self._duration[key] = value
            self._misses.value += 1
        else:
            self._hits.value += 1
        return value

    def energy(self, device: Device, task: Task) -> float:  # perf: hot
        key = self._task_key(device, task)
        value = self._energy.get(key)
        if value is None:
            value = device.estimate_energy(task)
            self._energy[key] = value
            self._misses.value += 1
        else:
            self._hits.value += 1
        return value

    def transfer(self, src: str, dst: str, nbytes: int) -> float:  # perf: hot
        key = (src, dst, nbytes)
        value = self._transfer.get(key)
        if value is None:
            value = self.infrastructure.network.estimate_transfer_time(
                src, dst, nbytes)
            self._transfer[key] = value
            self._misses.value += 1
        else:
            self._hits.value += 1
        return value


def estimate_placement_kpis(application: Application,  # perf: hot
                            placement: Placement,
                            infrastructure: Infrastructure,
                            source_device: str | None = None,
                            cache: PlacementCostCache | None = None
                            ) -> tuple[float, float]:
    """Analytic (latency, energy) estimate of a placement.

    List-schedules the DAG over the assigned devices, including network
    transfer estimates for cross-device edges — the model the cognitive
    strategies optimize against before committing. When *source_device*
    is given, root tasks pay for moving their input data from it (input
    data originates somewhere concrete — usually an edge sensor).

    Passing a :class:`PlacementCostCache` makes the per-term costs
    memoized lookups; the result is bit-identical to the uncached path.
    """
    if cache is not None:
        cache.refresh()
        duration_of = cache.duration
        energy_of = cache.energy
        transfer_of = cache.transfer
    else:
        duration_of = Device.estimate_duration
        energy_of = Device.estimate_energy
        transfer_of = infrastructure.network.estimate_transfer_time
    devices = infrastructure.devices
    # Device availability is seeded lazily with the current backlog so
    # the estimate is load-aware (interference on a device is visible);
    # only devices the placement actually touches are consulted.
    device_free: dict[str, float] = {}
    finish: dict[str, float] = {}
    energy = 0.0
    makespan = 0.0
    assignment = placement.assignment
    for task in application.tasks:
        name = task.name
        device = devices[assignment[name]]
        device_name = device.name
        ready = 0.0
        preds = application.predecessors(name)
        if not preds and source_device is not None \
                and source_device != device_name:
            ready = transfer_of(source_device, device_name,
                                task.input_bytes)
        for pred in preds:
            arrival = finish[pred]
            pred_device = assignment[pred]
            if pred_device != device_name:
                arrival += transfer_of(pred_device, device_name,
                                       application.edge_bytes(pred, name))
            if arrival > ready:
                ready = arrival
        free = device_free.get(device_name)
        if free is None:
            free = device.backlog_seconds()
        start = ready if ready > free else free
        end = start + duration_of(device, task)
        finish[name] = end
        device_free[device_name] = end
        if end > makespan:
            makespan = end
        energy += energy_of(device, task)
    return makespan, energy


#: Objective weight on energy shared by every solver backend; the
#: complement weights latency. Kept in one place so exact bounds and
#: metaheuristic scores stay comparable to the last bit.
_DEFAULT_ENERGY_WEIGHT = 0.3


def placement_cost(application: Application,
                   infrastructure: Infrastructure,
                   assignment: dict[str, str], *,
                   strategy: str = "candidate",
                   source_device: str | None = None,
                   cache: PlacementCostCache | None = None,
                   energy_weight: float = _DEFAULT_ENERGY_WEIGHT
                   ) -> float:
    """Scalar objective every solver minimizes.

    ``latency * (1 - w) + w * energy / 100`` over the analytic KPI
    model — the single definition all backends (baselines, swarms, the
    exact branch-and-bound, the portfolio) share, so their reported
    costs are directly comparable bit for bit.
    """
    latency, energy = estimate_placement_kpis(
        application, Placement(dict(assignment), strategy),
        infrastructure, source_device, cache)
    return latency * (1 - energy_weight) + energy_weight * energy / 100.0


@dataclass(frozen=True)
class SolveBudget:
    """Deterministic work budget for one anytime solve.

    Budgets are expressed on the DES clock, never the wall clock: a
    ``deadline_s`` (modeled seconds) converts to a node allowance
    through ``node_cost_s``, the modeled cost of one search node /
    objective evaluation. The default budget is unlimited — solvers
    run to their natural termination (configured iterations, or an
    exhausted search tree).
    """

    max_nodes: int | None = None
    deadline_s: float | None = None
    node_cost_s: float = 25e-6

    def __post_init__(self):
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ConfigurationError("max_nodes must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be > 0")
        if self.node_cost_s <= 0:
            raise ConfigurationError("node_cost_s must be > 0")

    @property
    def unlimited(self) -> bool:
        return self.max_nodes is None and self.deadline_s is None

    def node_limit(self) -> int | None:
        """The budget as a node count (``None`` when unlimited)."""
        limits = []
        if self.max_nodes is not None:
            limits.append(self.max_nodes)
        if self.deadline_s is not None:
            limits.append(max(1, int(self.deadline_s / self.node_cost_s)))
        return min(limits) if limits else None


@dataclass
class PlacementRequest:
    """One placement problem handed to an anytime solver."""

    application: Application
    infrastructure: Infrastructure
    constraints: PlacementConstraints = field(
        default_factory=PlacementConstraints)
    budget: SolveBudget = field(default_factory=SolveBudget)
    #: Optional incumbent to start from (e.g. the currently deployed
    #: placement, or MAPE's last advice). Ignored when it no longer
    #: covers the application or names failed/unknown devices.
    warm_start: Placement | None = None
    #: Called as ``on_incumbent(placement, cost, backend)`` every time
    #: a solver improves its best-so-far; lets callers stop early.
    on_incumbent: Callable[[Placement, float, str], None] | None = None


@dataclass
class SolveStats:
    """Per-backend accounting for one solve."""

    backend: str
    nodes: int = 0         # budget units charged (search nodes)
    evaluations: int = 0   # full objective evaluations (memo misses)
    steps: int = 0         # cooperative step() slices executed
    incumbents: int = 0    # times the backend improved its best
    pruned: int = 0        # subtrees cut by the bound (exact only)
    best_cost: float = math.inf
    lower_bound: float = 0.0
    proven_optimal: bool = False

    def to_payload(self) -> dict:
        return {
            "backend": self.backend,
            "nodes": self.nodes,
            "evaluations": self.evaluations,
            "steps": self.steps,
            "incumbents": self.incumbents,
            "pruned": self.pruned,
            "best_cost": self.best_cost,
            "lower_bound": self.lower_bound,
            "proven_optimal": self.proven_optimal,
        }


@dataclass
class PlacementResult:
    """Outcome of one anytime solve."""

    placement: Placement
    cost: float
    optimal: bool
    lower_bound: float
    #: Which backend produced the returned placement ("exact", "pso",
    #: "warm-start", ... — meaningful for the portfolio).
    provenance: str
    stats: tuple[SolveStats, ...] = ()

    def to_payload(self) -> dict:
        """JSON-safe snapshot (stable key order for byte-identity)."""
        return {
            "assignment": dict(sorted(self.placement.assignment.items())),
            "strategy": self.placement.strategy,
            "cost": self.cost,
            "optimal": self.optimal,
            "lower_bound": self.lower_bound,
            "provenance": self.provenance,
            "stats": [s.to_payload() for s in self.stats],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":"))


class SolveSession:
    """One in-progress anytime solve (cooperative stepping).

    ``step()`` advances one bounded slice of work and returns ``True``
    while more work remains within budget; ``result()`` snapshots the
    best incumbent found so far and is valid at any point (it
    self-starts if no step ran yet). The portfolio round-robins
    ``step()`` across backends — no threads, so interleaving is
    deterministic.
    """

    def step(self) -> bool:
        raise NotImplementedError

    def result(self) -> PlacementResult:
        raise NotImplementedError


def _warm_incumbent(request: PlacementRequest, energy_weight: float,
                    cache: PlacementCostCache | None = None
                    ) -> tuple[Placement, float] | None:
    """Validate and cost the request's warm start (None if unusable)."""
    warm = request.warm_start
    if warm is None:
        return None
    devices = request.infrastructure.devices
    assignment = {}
    for task in request.application.tasks:
        device = warm.assignment.get(task.name)
        if device is None or device not in devices \
                or getattr(devices[device], "failed", False):
            return None
        assignment[task.name] = device
    cost = placement_cost(
        request.application, request.infrastructure, assignment,
        strategy=warm.strategy,
        source_device=request.constraints.source_device,
        cache=cache, energy_weight=energy_weight)
    return Placement(assignment, warm.strategy), cost


class _OneShotSession(SolveSession):
    """Adapter running a one-shot heuristic under the anytime contract.

    The heuristic's single ``_place()`` pass is one indivisible step;
    budgets below one evaluation still get a complete answer (an
    anytime solver never returns without an incumbent).
    """

    def __init__(self, strategy: "PlacementStrategy",
                 request: PlacementRequest):
        self._strategy = strategy
        self._request = request
        self._stats = SolveStats(backend=strategy.name)
        self._best: tuple[Placement, float] | None = None

    def step(self) -> bool:
        if self._best is not None:
            return False
        strategy, request = self._strategy, self._request
        weight = getattr(strategy, "energy_weight",
                         _DEFAULT_ENERGY_WEIGHT)
        placement = strategy._place(request.application,
                                    request.infrastructure,
                                    request.constraints)
        cost = placement_cost(
            request.application, request.infrastructure,
            placement.assignment, strategy=placement.strategy,
            source_device=request.constraints.source_device,
            energy_weight=weight)
        stats = self._stats
        stats.nodes += 1
        stats.evaluations += 1
        stats.steps += 1
        warm = _warm_incumbent(request, weight)
        if warm is not None and warm[1] < cost:
            placement, cost = warm
        self._best = (placement, cost)
        stats.best_cost = cost
        stats.incumbents = 1
        if request.on_incumbent is not None:
            request.on_incumbent(placement, cost, strategy.name)
        return False

    def result(self) -> PlacementResult:
        if self._best is None:
            self.step()
        placement, cost = self._best
        return PlacementResult(
            placement=placement, cost=cost, optimal=False,
            lower_bound=0.0, provenance=self._strategy.name,
            stats=(self._stats,))


def _decode_relaxed(position: list[float],
                    options: list[list[Device]]) -> list[int]:
    """Argmax per per-task score block of a relaxed position vector.

    ``index(max(...))`` picks the first maximum, exactly like the
    argmax over range() it replaces — just without a lambda call per
    element.
    """
    choices = []
    offset = 0
    for opts in options:
        end = offset + len(opts)
        scores = position[offset:end]
        choices.append(scores.index(max(scores)))
        offset = end
    return choices


class _SwarmSession(SolveSession):
    """Anytime adapter over the population optimizers' ``steps()``.

    Budget granularity is one optimizer iteration: the node meter is
    checked between iterations, never inside one, so a solve under a
    given budget is a strict prefix of the unbudgeted solve — same RNG
    draws, same incumbents, just cut short. An unlimited budget runs
    exactly the strategy's configured ``iterations``, which is what the
    deprecated ``place()`` shim relies on for bit-compatibility.
    """

    def __init__(self, strategy: "_CognitiveBase",
                 request: PlacementRequest):
        self._strategy = strategy
        self._request = request
        self._stats = SolveStats(backend=strategy.name)
        self._limit = request.budget.node_limit()
        self._iterations_left = strategy.iterations
        self._gen = None
        self._decode = None
        self._best: tuple[Placement, float] | None = None

    def _count_eval(self) -> None:
        self._stats.evaluations += 1
        self._stats.nodes += 1

    def _offer(self, placement: Placement, cost: float) -> None:
        if self._best is None or cost < self._best[1]:
            self._best = (placement, cost)
            self._stats.incumbents += 1
            self._stats.best_cost = cost
            callback = self._request.on_incumbent
            if callback is not None:
                callback(placement, cost, self._strategy.name)

    def _record(self, encoded, value: float) -> None:
        if encoded is None:
            return
        if self._best is not None and value >= self._best[1]:
            return
        self._offer(Placement(self._decode(encoded),
                              self._strategy.name), value)

    @property
    def _exhausted(self) -> bool:
        return self._limit is not None \
            and self._stats.nodes >= self._limit

    def _start(self) -> None:
        strategy, request = self._strategy, self._request
        optimizer, objective, decode = strategy._build(
            request, self._count_eval)
        self._decode = decode
        warm = _warm_incumbent(request, strategy.energy_weight,
                               strategy._cache_for(request.infrastructure))
        if warm is not None:
            self._offer(*warm)
        self._gen = optimizer.steps(objective)
        self._record(*next(self._gen))  # init population

    def step(self) -> bool:
        if self._gen is None:
            self._start()
            self._stats.steps += 1
        elif self._exhausted or self._iterations_left <= 0:
            return False
        else:
            self._record(*next(self._gen))
            self._iterations_left -= 1
            self._stats.steps += 1
        return not self._exhausted and self._iterations_left > 0

    def result(self) -> PlacementResult:
        if self._gen is None:
            self._start()
            self._stats.steps += 1
        if self._best is None:
            # An anytime solver must hold an incumbent, but ACO's init
            # yield carries no evaluated point: force one iteration
            # even past the budget (the swarm analogue of the exact
            # lane's first-dive guarantee).
            self._record(*next(self._gen))
            self._iterations_left -= 1
            self._stats.steps += 1
        placement, cost = self._best
        return PlacementResult(
            placement=placement, cost=cost, optimal=False,
            lower_bound=0.0, provenance=self._strategy.name,
            stats=(self._stats,))


class PlacementStrategy:
    """Base class: anytime solvers implementing :meth:`solve`.

    Subclasses either override :meth:`session` (stepping backends:
    swarms, exact, portfolio) or :meth:`_place` (one-shot heuristics,
    adapted by :class:`_OneShotSession`). :meth:`place` survives as a
    deprecated shim over :meth:`solve` with identical behavior.
    """

    name = "abstract"

    def session(self, request: PlacementRequest) -> SolveSession:
        """Start an anytime solve; callers drive ``step()``."""
        return _OneShotSession(self, request)

    def solve(self, request: PlacementRequest) -> PlacementResult:
        """Run the solve to budget exhaustion or completion."""
        session = self.session(request)
        while session.step():
            pass
        return session.result()

    def place(self, application: Application,
              infrastructure: Infrastructure,
              constraints: PlacementConstraints) -> Placement:
        """Deprecated pre-anytime entry point (shim over solve())."""
        warnings.warn(
            "PlacementStrategy.place() is deprecated; build a "
            "PlacementRequest and call solve() instead",
            DeprecationWarning, stacklevel=2)
        request = PlacementRequest(application, infrastructure,
                                   constraints)
        return self.solve(request).placement

    def _place(self, application: Application,
               infrastructure: Infrastructure,
               constraints: PlacementConstraints) -> Placement:
        raise NotImplementedError

    def _eligible_or_raise(self, task: Task,
                           infrastructure: Infrastructure,
                           constraints: PlacementConstraints
                           ) -> list[Device]:
        devices = eligible_devices(task, infrastructure, constraints)
        if not devices:
            raise OrchestrationError(
                f"no eligible device for task {task.name!r} "
                f"(privacy={task.requirements.privacy.value}, "
                f"security>={constraints.min_security_level})")
        return sorted(devices, key=lambda d: d.name)


class RandomPlacement(PlacementStrategy):
    """Uniform choice among eligible devices (the weakest baseline)."""

    name = "random"

    def __init__(self, rng: random.Random):
        self.rng = rng

    def _place(self, application, infrastructure, constraints) -> Placement:
        assignment = {}
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            assignment[task.name] = self.rng.choice(devices).name
        return Placement(assignment, self.name)


class RoundRobinPlacement(PlacementStrategy):
    """Cycle through eligible devices (the Kubernetes-ish baseline)."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def _place(self, application, infrastructure, constraints) -> Placement:
        assignment = {}
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            assignment[task.name] = devices[self._cursor
                                            % len(devices)].name
            self._cursor += 1
        return Placement(assignment, self.name)


class GreedyPlacement(PlacementStrategy):
    """Per-task best estimated finish time (myopic but informed)."""

    name = "greedy"

    def _place(self, application, infrastructure, constraints) -> Placement:
        assignment: dict[str, str] = {}
        device_free: dict[str, float] = {
            name: dev.backlog_seconds()
            for name, dev in infrastructure.devices.items()
        }
        finish: dict[str, float] = {}
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            best_device = None
            best_finish = float("inf")
            for device in devices:
                ready = 0.0
                preds = application.predecessors(task.name)
                if not preds and constraints.source_device is not None \
                        and constraints.source_device != device.name:
                    ready = infrastructure.network \
                        .estimate_transfer_time(
                            constraints.source_device, device.name,
                            task.input_bytes)
                for pred in preds:
                    arrival = finish[pred]
                    if assignment[pred] != device.name:
                        arrival += infrastructure.network \
                            .estimate_transfer_time(
                                assignment[pred], device.name,
                                application.edge_bytes(pred, task.name))
                    ready = max(ready, arrival)
                start = max(ready, device_free.get(device.name, 0.0))
                candidate = start + device.estimate_duration(task)
                if candidate < best_finish:
                    best_finish = candidate
                    best_device = device
            assignment[task.name] = best_device.name
            finish[task.name] = best_finish
            device_free[best_device.name] = best_finish
        return Placement(assignment, self.name)


class _CognitiveBase(PlacementStrategy):
    """Shared machinery for optimizer-backed strategies."""

    def __init__(self, rng: random.Random,
                 energy_weight: float = _DEFAULT_ENERGY_WEIGHT,
                 iterations: int = 30):
        self.rng = rng
        self.energy_weight = energy_weight
        self.iterations = iterations
        self._cost_cache: PlacementCostCache | None = None

    def session(self, request: PlacementRequest) -> SolveSession:
        return _SwarmSession(self, request)

    def _build(self, request: PlacementRequest,
               on_evaluate: Callable[[], None]):
        """(optimizer, objective, decode) for one anytime solve."""
        raise NotImplementedError

    def _options_for(self, request: PlacementRequest
                     ) -> tuple[list[Task], list[list[Device]]]:
        tasks = request.application.tasks
        options = [self._eligible_or_raise(task, request.infrastructure,
                                           request.constraints)
                   for task in tasks]
        return tasks, options

    def _objective(self, application, infrastructure, tasks, options,
                   choices: list[int],
                   source_device: str | None = None) -> float:
        assignment = {
            task.name: options[i][choice].name
            for i, (task, choice) in enumerate(zip(tasks, choices))
        }
        latency, energy = estimate_placement_kpis(
            application, Placement(assignment, self.name), infrastructure,
            source_device)
        return latency * (1 - self.energy_weight) \
            + self.energy_weight * energy / 100.0

    def _cache_for(self, infrastructure) -> PlacementCostCache:
        """Cost cache bound to *infrastructure*, reused across place()."""
        cache = self._cost_cache
        if cache is None or cache.infrastructure is not infrastructure:
            cache = PlacementCostCache(infrastructure)
            self._cost_cache = cache
        return cache

    def _compiled_objective(self, application, infrastructure, tasks,
                            options, source_device: str | None = None,
                            on_evaluate: Callable[[], None]
                            | None = None):
        """Build a memoized choices->score callable for one solve run.

        Two cache levels: per-term costs via :class:`PlacementCostCache`
        (valid across solve() calls, generation-invalidated), and a
        per-call memo keyed on the discrete choice tuple — the relaxed
        continuous encodings (PSO/firefly) decode many nearby positions
        to the same assignment, so full re-evaluations collapse. Both
        layers return exactly what :meth:`_objective` would.
        *on_evaluate* fires once per memo miss — the budget meter the
        anytime sessions charge (memo hits are free by design).
        """
        cache = self._cache_for(infrastructure)
        names = [task.name for task in tasks]
        strategy = self.name
        energy_weight = self.energy_weight
        latency_weight = 1 - energy_weight
        memo: dict[tuple[int, ...], float] = {}

        def objective(choices) -> float:  # perf: hot
            key = tuple(choices)
            score = memo.get(key)
            if score is None:
                if on_evaluate is not None:
                    on_evaluate()
                assignment = {}
                for i, choice in enumerate(key):
                    assignment[names[i]] = options[i][choice].name
                latency, energy = estimate_placement_kpis(
                    application, Placement(assignment, strategy),
                    infrastructure, source_device, cache)
                score = latency * latency_weight \
                    + energy_weight * energy / 100.0
                memo[key] = score
            return score

        return objective


class PsoPlacement(_CognitiveBase):
    """PSO over a relaxed assignment: one score per (task, device)."""

    name = "pso"

    def _build(self, request, on_evaluate):
        tasks, options = self._options_for(request)
        dims = sum(len(opts) for opts in options)
        compiled = self._compiled_objective(
            request.application, request.infrastructure, tasks, options,
            request.constraints.source_device, on_evaluate)

        def objective(position: list[float]) -> float:
            return compiled(_decode_relaxed(position, options))

        def decode(position: list[float]) -> dict[str, str]:
            choices = _decode_relaxed(position, options)
            return {task.name: options[i][choice].name
                    for i, (task, choice) in enumerate(zip(tasks,
                                                           choices))}

        optimizer = ParticleSwarmOptimizer(dims, self.rng, particles=16)
        return optimizer, objective, decode


class FireflyPlacement(_CognitiveBase):
    """Firefly algorithm over the same relaxed encoding as PSO."""

    name = "firefly"

    def _build(self, request, on_evaluate):
        tasks, options = self._options_for(request)
        dims = sum(len(opts) for opts in options)
        compiled = self._compiled_objective(
            request.application, request.infrastructure, tasks, options,
            request.constraints.source_device, on_evaluate)

        def objective(position: list[float]) -> float:
            return compiled(_decode_relaxed(position, options))

        def decode(position: list[float]) -> dict[str, str]:
            choices = _decode_relaxed(position, options)
            return {task.name: options[i][choice].name
                    for i, (task, choice) in enumerate(zip(tasks,
                                                           choices))}

        optimizer = FireflyOptimizer(dims, self.rng, fireflies=12)
        return optimizer, objective, decode


class AcoPlacement(_CognitiveBase):
    """ACO directly over the discrete task-to-device choices."""

    name = "aco"

    def _build(self, request, on_evaluate):
        tasks, options = self._options_for(request)
        max_options = max(len(opts) for opts in options)
        compiled = self._compiled_objective(
            request.application, request.infrastructure, tasks, options,
            request.constraints.source_device, on_evaluate)

        def objective(choices: list[int]) -> float:
            return compiled([min(c, len(options[i]) - 1)
                             for i, c in enumerate(choices)])

        def decode(choices: list[int]) -> dict[str, str]:
            return {
                tasks[i].name: options[i][min(c, len(options[i]) - 1)]
                .name
                for i, c in enumerate(choices)
            }

        optimizer = AntColonyOptimizer(len(tasks), max_options,
                                       self.rng, ants=12)
        return optimizer, objective, decode


@dataclass
class ExecutionReport:
    """Measured KPIs from actually running a placed application."""

    application: str
    strategy: str
    makespan_s: float
    energy_j: float
    offloads: int
    records: list = field(default_factory=list)


def execute_placement(application: Application, placement: Placement,
                      infrastructure: Infrastructure,
                      source_device: str | None = None
                      ) -> ExecutionReport:
    """Run the placed application to completion in the DES.

    Tasks wait for predecessors, pay real (contended) network transfers
    for cross-device edges, and contend for device cores. Returns the
    measured makespan and energy.
    """
    sim = infrastructure.sim
    start_time = sim.now
    done_events: dict[str, object] = {
        task.name: sim.event() for task in application.tasks}
    energy_total = {"j": 0.0}
    offloads = {"n": 0}
    records: list = []

    def run_task(task: Task):
        device = infrastructure.device(placement.device_of(task.name))
        preds = application.predecessors(task.name)
        if not preds and source_device is not None \
                and source_device != device.name:
            yield sim.process(infrastructure.network.transfer(
                source_device, device.name, task.input_bytes))
        for pred in preds:
            yield done_events[pred]
            pred_device = placement.device_of(pred)
            if pred_device != device.name:
                yield sim.process(infrastructure.network.transfer(
                    pred_device, device.name,
                    application.edge_bytes(pred, task.name)))
                infrastructure.record_offload(pred_device, device.name)
                offloads["n"] += 1
        record = yield sim.process(device.execute(task))
        energy_total["j"] += record.energy_j
        records.append(record)
        # Emitted at the completion instant (sim.now == record.end_s),
        # keeping trace timestamps monotone; an ambient `with` around
        # the whole generator would misattribute interleaved events.
        tracer.record_span(
            "continuum.device.task", "continuum",
            record.start_s, record.end_s,
            task=record.task_name, device=record.device_name,
            operating_point=record.operating_point)
        done_events[task.name].succeed(record)

    tracer = infrastructure.ctx.tracer
    with tracer.start_span("mirto.placement.execute", layer="mirto",
                           application=application.name):
        for task in application.tasks:
            sim.process(run_task(task))
        sim.run(until=sim.all_of(list(done_events.values())))
    return ExecutionReport(
        application=application.name,
        strategy=placement.strategy,
        makespan_s=sim.now - start_time,
        energy_j=energy_total["j"],
        offloads=offloads["n"],
        records=records,
    )


def make_strategy(name: str, rng: random.Random | None = None
                  ) -> PlacementStrategy:
    """Factory used by benchmarks and the WL Manager."""
    rng = rng or random.Random(0)

    def swarm_rule():
        from repro.mirto.swarm_rules import RuleBasedPlacement
        return RuleBasedPlacement(rng=rng)

    def exact():
        from repro.mirto.exact import ExactPlacement
        return ExactPlacement()

    def portfolio():
        from repro.mirto.portfolio import PortfolioPlacement
        return PortfolioPlacement(seed=rng.getrandbits(32))

    strategies = {
        "random": lambda: RandomPlacement(rng),
        "round-robin": RoundRobinPlacement,
        "greedy": GreedyPlacement,
        "pso": lambda: PsoPlacement(rng),
        "aco": lambda: AcoPlacement(rng),
        "firefly": lambda: FireflyPlacement(rng),
        "swarm-rule": swarm_rule,
        "exact": exact,
        "portfolio": portfolio,
    }
    if name not in strategies:
        raise OrchestrationError(f"unknown placement strategy {name!r}")
    return strategies[name]()
