"""Workload placement: the decision problem the MIRTO WL Manager solves.

Given an application DAG, the infrastructure, and the constraints the
TOSCA policies impose (privacy layer ceilings, security floors, memory),
choose a device for every task. Implements the baselines the paper's
cognitive claims are measured against (random, round-robin, greedy) and
the cognitive strategies (PSO and ACO over the constrained assignment
space). :func:`execute_placement` then actually runs the placed
application in the discrete-event simulator and reports measured KPIs —
so strategy comparisons in the benchmarks are simulation-backed, not
analytic-only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import OrchestrationError
from repro.continuum.devices import Device, Layer
from repro.continuum.infrastructure import Infrastructure
from repro.continuum.workload import Application, PrivacyClass, Task
from repro.mirto.swarm import (
    AntColonyOptimizer,
    FireflyOptimizer,
    ParticleSwarmOptimizer,
)

_LAYER_ORDER = [Layer.EDGE, Layer.FOG, Layer.CLOUD]
_SECURITY_RANK = {"low": 0, "medium": 1, "high": 2}


@dataclass
class PlacementConstraints:
    """Constraints distilled from TOSCA policies for one application."""

    min_security_level: str = "low"
    source_device: str | None = None  # where input data originates
    trust_threshold: float = 0.0
    trusted: dict[str, float] = field(default_factory=dict)

    def max_layer_for(self, task: Task) -> Layer:
        privacy = task.requirements.privacy
        if privacy is PrivacyClass.RAW_PERSONAL:
            return Layer.EDGE
        if privacy is PrivacyClass.AGGREGATED:
            return Layer.FOG
        return Layer.CLOUD


def eligible_devices(task: Task, infrastructure: Infrastructure,
                     constraints: PlacementConstraints) -> list[Device]:
    """Devices satisfying every hard constraint for *task*."""
    ceiling = _LAYER_ORDER.index(constraints.max_layer_for(task))
    need_security = max(
        _SECURITY_RANK[constraints.min_security_level],
        _SECURITY_RANK.get(task.requirements.min_security_level, 0))
    result = []
    for device in infrastructure.devices.values():
        if getattr(device, "failed", False):
            continue
        if _LAYER_ORDER.index(device.spec.layer) > ceiling:
            continue
        if _SECURITY_RANK[device.spec.max_security_level] < need_security:
            continue
        if device.spec.memory_bytes < task.memory_bytes:
            continue
        trust = constraints.trusted.get(device.name, 1.0)
        if trust < constraints.trust_threshold:
            continue
        result.append(device)
    return result


@dataclass
class Placement:
    """A complete task-to-device assignment."""

    assignment: dict[str, str]
    strategy: str

    def device_of(self, task_name: str) -> str:
        return self.assignment[task_name]


class PlacementCostCache:
    """Memoized per-(task, device, operating-point) cost terms.

    The analytic KPI model is built from three pure terms — task
    duration on a device, task energy on a device, and network transfer
    time between two hosts — all of which are invariant while the
    infrastructure's topology and fault state hold still. Swarm
    optimizers evaluate thousands of candidate assignments over the
    same few hundred distinct terms, so memoizing them turns
    :func:`estimate_placement_kpis` incremental.

    Validity is keyed on :attr:`Infrastructure.generation`: the cache
    self-invalidates whenever devices/links were added or a fault
    failed/repaired a device. Operating-point switches need no
    generation bump because the active point's name is part of every
    duration/energy key.
    """

    def __init__(self, infrastructure: Infrastructure):
        self.infrastructure = infrastructure
        self._generation = infrastructure.generation
        self._duration: dict[tuple, float] = {}
        self._energy: dict[tuple, float] = {}
        self._transfer: dict[tuple, float] = {}
        metrics = infrastructure.ctx.metrics
        self._hits = metrics.counter(
            "mirto.placement.cache_hits", "memoized cost-term hits")
        self._misses = metrics.counter(
            "mirto.placement.cache_misses", "cost terms computed fresh")

    def refresh(self) -> None:
        """Drop every memoized term if the infrastructure changed."""
        generation = self.infrastructure.generation
        if generation != self._generation:
            self._duration.clear()
            self._energy.clear()
            self._transfer.clear()
            self._generation = generation

    @staticmethod
    def _task_key(device: Device, task: Task) -> tuple:
        return (device.name, device.operating_point.name, task.megaops,
                task.input_bytes, task.output_bytes, task.kernel)

    def duration(self, device: Device, task: Task) -> float:  # perf: hot
        key = self._task_key(device, task)
        value = self._duration.get(key)
        if value is None:
            value = device.estimate_duration(task)
            self._duration[key] = value
            self._misses.value += 1
        else:
            self._hits.value += 1
        return value

    def energy(self, device: Device, task: Task) -> float:  # perf: hot
        key = self._task_key(device, task)
        value = self._energy.get(key)
        if value is None:
            value = device.estimate_energy(task)
            self._energy[key] = value
            self._misses.value += 1
        else:
            self._hits.value += 1
        return value

    def transfer(self, src: str, dst: str, nbytes: int) -> float:  # perf: hot
        key = (src, dst, nbytes)
        value = self._transfer.get(key)
        if value is None:
            value = self.infrastructure.network.estimate_transfer_time(
                src, dst, nbytes)
            self._transfer[key] = value
            self._misses.value += 1
        else:
            self._hits.value += 1
        return value


def estimate_placement_kpis(application: Application,  # perf: hot
                            placement: Placement,
                            infrastructure: Infrastructure,
                            source_device: str | None = None,
                            cache: PlacementCostCache | None = None
                            ) -> tuple[float, float]:
    """Analytic (latency, energy) estimate of a placement.

    List-schedules the DAG over the assigned devices, including network
    transfer estimates for cross-device edges — the model the cognitive
    strategies optimize against before committing. When *source_device*
    is given, root tasks pay for moving their input data from it (input
    data originates somewhere concrete — usually an edge sensor).

    Passing a :class:`PlacementCostCache` makes the per-term costs
    memoized lookups; the result is bit-identical to the uncached path.
    """
    if cache is not None:
        cache.refresh()
        duration_of = cache.duration
        energy_of = cache.energy
        transfer_of = cache.transfer
    else:
        duration_of = Device.estimate_duration
        energy_of = Device.estimate_energy
        transfer_of = infrastructure.network.estimate_transfer_time
    devices = infrastructure.devices
    # Device availability is seeded lazily with the current backlog so
    # the estimate is load-aware (interference on a device is visible);
    # only devices the placement actually touches are consulted.
    device_free: dict[str, float] = {}
    finish: dict[str, float] = {}
    energy = 0.0
    makespan = 0.0
    assignment = placement.assignment
    for task in application.tasks:
        name = task.name
        device = devices[assignment[name]]
        device_name = device.name
        ready = 0.0
        preds = application.predecessors(name)
        if not preds and source_device is not None \
                and source_device != device_name:
            ready = transfer_of(source_device, device_name,
                                task.input_bytes)
        for pred in preds:
            arrival = finish[pred]
            pred_device = assignment[pred]
            if pred_device != device_name:
                arrival += transfer_of(pred_device, device_name,
                                       application.edge_bytes(pred, name))
            if arrival > ready:
                ready = arrival
        free = device_free.get(device_name)
        if free is None:
            free = device.backlog_seconds()
        start = ready if ready > free else free
        end = start + duration_of(device, task)
        finish[name] = end
        device_free[device_name] = end
        if end > makespan:
            makespan = end
        energy += energy_of(device, task)
    return makespan, energy


class PlacementStrategy:
    """Base class; subclasses implement :meth:`place`."""

    name = "abstract"

    def place(self, application: Application,
              infrastructure: Infrastructure,
              constraints: PlacementConstraints) -> Placement:
        raise NotImplementedError

    def _eligible_or_raise(self, task: Task,
                           infrastructure: Infrastructure,
                           constraints: PlacementConstraints
                           ) -> list[Device]:
        devices = eligible_devices(task, infrastructure, constraints)
        if not devices:
            raise OrchestrationError(
                f"no eligible device for task {task.name!r} "
                f"(privacy={task.requirements.privacy.value}, "
                f"security>={constraints.min_security_level})")
        return sorted(devices, key=lambda d: d.name)


class RandomPlacement(PlacementStrategy):
    """Uniform choice among eligible devices (the weakest baseline)."""

    name = "random"

    def __init__(self, rng: random.Random):
        self.rng = rng

    def place(self, application, infrastructure, constraints) -> Placement:
        assignment = {}
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            assignment[task.name] = self.rng.choice(devices).name
        return Placement(assignment, self.name)


class RoundRobinPlacement(PlacementStrategy):
    """Cycle through eligible devices (the Kubernetes-ish baseline)."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def place(self, application, infrastructure, constraints) -> Placement:
        assignment = {}
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            assignment[task.name] = devices[self._cursor
                                            % len(devices)].name
            self._cursor += 1
        return Placement(assignment, self.name)


class GreedyPlacement(PlacementStrategy):
    """Per-task best estimated finish time (myopic but informed)."""

    name = "greedy"

    def place(self, application, infrastructure, constraints) -> Placement:
        assignment: dict[str, str] = {}
        device_free: dict[str, float] = {
            name: dev.backlog_seconds()
            for name, dev in infrastructure.devices.items()
        }
        finish: dict[str, float] = {}
        for task in application.tasks:
            devices = self._eligible_or_raise(task, infrastructure,
                                              constraints)
            best_device = None
            best_finish = float("inf")
            for device in devices:
                ready = 0.0
                preds = application.predecessors(task.name)
                if not preds and constraints.source_device is not None \
                        and constraints.source_device != device.name:
                    ready = infrastructure.network \
                        .estimate_transfer_time(
                            constraints.source_device, device.name,
                            task.input_bytes)
                for pred in preds:
                    arrival = finish[pred]
                    if assignment[pred] != device.name:
                        arrival += infrastructure.network \
                            .estimate_transfer_time(
                                assignment[pred], device.name,
                                application.edge_bytes(pred, task.name))
                    ready = max(ready, arrival)
                start = max(ready, device_free.get(device.name, 0.0))
                candidate = start + device.estimate_duration(task)
                if candidate < best_finish:
                    best_finish = candidate
                    best_device = device
            assignment[task.name] = best_device.name
            finish[task.name] = best_finish
            device_free[best_device.name] = best_finish
        return Placement(assignment, self.name)


class _CognitiveBase(PlacementStrategy):
    """Shared machinery for optimizer-backed strategies."""

    def __init__(self, rng: random.Random, energy_weight: float = 0.3,
                 iterations: int = 30):
        self.rng = rng
        self.energy_weight = energy_weight
        self.iterations = iterations
        self._cost_cache: PlacementCostCache | None = None

    def _objective(self, application, infrastructure, tasks, options,
                   choices: list[int],
                   source_device: str | None = None) -> float:
        assignment = {
            task.name: options[i][choice].name
            for i, (task, choice) in enumerate(zip(tasks, choices))
        }
        latency, energy = estimate_placement_kpis(
            application, Placement(assignment, self.name), infrastructure,
            source_device)
        return latency * (1 - self.energy_weight) \
            + self.energy_weight * energy / 100.0

    def _cache_for(self, infrastructure) -> PlacementCostCache:
        """Cost cache bound to *infrastructure*, reused across place()."""
        cache = self._cost_cache
        if cache is None or cache.infrastructure is not infrastructure:
            cache = PlacementCostCache(infrastructure)
            self._cost_cache = cache
        return cache

    def _compiled_objective(self, application, infrastructure, tasks,
                            options, source_device: str | None = None):
        """Build a memoized choices->score callable for one place() run.

        Two cache levels: per-term costs via :class:`PlacementCostCache`
        (valid across place() calls, generation-invalidated), and a
        per-call memo keyed on the discrete choice tuple — the relaxed
        continuous encodings (PSO/firefly) decode many nearby positions
        to the same assignment, so full re-evaluations collapse. Both
        layers return exactly what :meth:`_objective` would.
        """
        cache = self._cache_for(infrastructure)
        names = [task.name for task in tasks]
        strategy = self.name
        energy_weight = self.energy_weight
        latency_weight = 1 - energy_weight
        memo: dict[tuple[int, ...], float] = {}

        def objective(choices) -> float:  # perf: hot
            key = tuple(choices)
            score = memo.get(key)
            if score is None:
                assignment = {}
                for i, choice in enumerate(key):
                    assignment[names[i]] = options[i][choice].name
                latency, energy = estimate_placement_kpis(
                    application, Placement(assignment, strategy),
                    infrastructure, source_device, cache)
                score = latency * latency_weight \
                    + energy_weight * energy / 100.0
                memo[key] = score
            return score

        return objective


class PsoPlacement(_CognitiveBase):
    """PSO over a relaxed assignment: one score per (task, device)."""

    name = "pso"

    def place(self, application, infrastructure, constraints) -> Placement:
        tasks = application.tasks
        options = [self._eligible_or_raise(t, infrastructure, constraints)
                   for t in tasks]
        dims = sum(len(opts) for opts in options)

        def decode(position: list[float]) -> list[int]:
            # index(max(...)) picks the first maximum, exactly like the
            # argmax over range() it replaces — just without a lambda
            # call per element.
            choices = []
            offset = 0
            for opts in options:
                end = offset + len(opts)
                scores = position[offset:end]
                choices.append(scores.index(max(scores)))
                offset = end
            return choices

        objective = self._compiled_objective(
            application, infrastructure, tasks, options,
            constraints.source_device)
        pso = ParticleSwarmOptimizer(dims, self.rng, particles=16)
        best_position, _ = pso.minimize(
            lambda pos: objective(decode(pos)),
            iterations=self.iterations)
        choices = decode(best_position)
        assignment = {
            task.name: options[i][choice].name
            for i, (task, choice) in enumerate(zip(tasks, choices))
        }
        return Placement(assignment, self.name)


class FireflyPlacement(_CognitiveBase):
    """Firefly algorithm over the same relaxed encoding as PSO."""

    name = "firefly"

    def place(self, application, infrastructure, constraints) -> Placement:
        tasks = application.tasks
        options = [self._eligible_or_raise(t, infrastructure, constraints)
                   for t in tasks]
        dims = sum(len(opts) for opts in options)

        def decode(position: list[float]) -> list[int]:
            # index(max(...)) picks the first maximum, exactly like the
            # argmax over range() it replaces — just without a lambda
            # call per element.
            choices = []
            offset = 0
            for opts in options:
                end = offset + len(opts)
                scores = position[offset:end]
                choices.append(scores.index(max(scores)))
                offset = end
            return choices

        objective = self._compiled_objective(
            application, infrastructure, tasks, options,
            constraints.source_device)
        optimizer = FireflyOptimizer(dims, self.rng, fireflies=12)
        best_position, _ = optimizer.minimize(
            lambda pos: objective(decode(pos)),
            iterations=self.iterations)
        choices = decode(best_position)
        assignment = {
            task.name: options[i][choice].name
            for i, (task, choice) in enumerate(zip(tasks, choices))
        }
        return Placement(assignment, self.name)


class AcoPlacement(_CognitiveBase):
    """ACO directly over the discrete task-to-device choices."""

    name = "aco"

    def place(self, application, infrastructure, constraints) -> Placement:
        tasks = application.tasks
        options = [self._eligible_or_raise(t, infrastructure, constraints)
                   for t in tasks]
        max_options = max(len(opts) for opts in options)

        compiled = self._compiled_objective(
            application, infrastructure, tasks, options,
            constraints.source_device)

        def objective(choices: list[int]) -> float:
            clamped = [min(c, len(options[i]) - 1)
                       for i, c in enumerate(choices)]
            return compiled(clamped)

        aco = AntColonyOptimizer(len(tasks), max_options, self.rng,
                                 ants=12)
        best_choices, _ = aco.minimize(objective,
                                       iterations=self.iterations)
        assignment = {
            task.name: options[i][min(choice, len(options[i]) - 1)].name
            for i, (task, choice) in enumerate(zip(tasks, best_choices))
        }
        return Placement(assignment, self.name)


@dataclass
class ExecutionReport:
    """Measured KPIs from actually running a placed application."""

    application: str
    strategy: str
    makespan_s: float
    energy_j: float
    offloads: int
    records: list = field(default_factory=list)


def execute_placement(application: Application, placement: Placement,
                      infrastructure: Infrastructure,
                      source_device: str | None = None
                      ) -> ExecutionReport:
    """Run the placed application to completion in the DES.

    Tasks wait for predecessors, pay real (contended) network transfers
    for cross-device edges, and contend for device cores. Returns the
    measured makespan and energy.
    """
    sim = infrastructure.sim
    start_time = sim.now
    done_events: dict[str, object] = {
        task.name: sim.event() for task in application.tasks}
    energy_total = {"j": 0.0}
    offloads = {"n": 0}
    records: list = []

    def run_task(task: Task):
        device = infrastructure.device(placement.device_of(task.name))
        preds = application.predecessors(task.name)
        if not preds and source_device is not None \
                and source_device != device.name:
            yield sim.process(infrastructure.network.transfer(
                source_device, device.name, task.input_bytes))
        for pred in preds:
            yield done_events[pred]
            pred_device = placement.device_of(pred)
            if pred_device != device.name:
                yield sim.process(infrastructure.network.transfer(
                    pred_device, device.name,
                    application.edge_bytes(pred, task.name)))
                infrastructure.record_offload(pred_device, device.name)
                offloads["n"] += 1
        record = yield sim.process(device.execute(task))
        energy_total["j"] += record.energy_j
        records.append(record)
        # Emitted at the completion instant (sim.now == record.end_s),
        # keeping trace timestamps monotone; an ambient `with` around
        # the whole generator would misattribute interleaved events.
        tracer.record_span(
            "continuum.device.task", "continuum",
            record.start_s, record.end_s,
            task=record.task_name, device=record.device_name,
            operating_point=record.operating_point)
        done_events[task.name].succeed(record)

    tracer = infrastructure.ctx.tracer
    with tracer.start_span("mirto.placement.execute", layer="mirto",
                           application=application.name):
        for task in application.tasks:
            sim.process(run_task(task))
        sim.run(until=sim.all_of(list(done_events.values())))
    return ExecutionReport(
        application=application.name,
        strategy=placement.strategy,
        makespan_s=sim.now - start_time,
        energy_j=energy_total["j"],
        offloads=offloads["n"],
        records=records,
    )


def make_strategy(name: str, rng: random.Random | None = None
                  ) -> PlacementStrategy:
    """Factory used by benchmarks and the WL Manager."""
    rng = rng or random.Random(0)

    def swarm_rule():
        from repro.mirto.swarm_rules import RuleBasedPlacement
        return RuleBasedPlacement(rng=rng)

    strategies = {
        "random": lambda: RandomPlacement(rng),
        "round-robin": RoundRobinPlacement,
        "greedy": GreedyPlacement,
        "pso": lambda: PsoPlacement(rng),
        "aco": lambda: AcoPlacement(rng),
        "firefly": lambda: FireflyPlacement(rng),
        "swarm-rule": swarm_rule,
    }
    if name not in strategies:
        raise OrchestrationError(f"unknown placement strategy {name!r}")
    return strategies[name]()
