"""The MIRTO Agent: API daemon, auth, TOSCA validation, negotiation.

Reproduces Fig. 3: a MIRTO agent is a (web-)service whose REST-like API
accepts orchestration requests carrying a TOSCA object model. Requests
pass the Authentication Module, then the TOSCA Validation Processor,
then reach the MIRTO Manager. Agents at different layers/components
"communicate with each other to negotiate the usage of resources":
an agent that cannot place a request locally forwards it to a peer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import (
    OrchestrationError,
    SecurityError,
    ValidationError,
)
from repro.mirto.manager import DeploymentOutcome, MirtoManager
from repro.security.auth import AuthModule
from repro.tosca.csar import CsarArchive
from repro.tosca.parser import parse_service_template
from repro.tosca.validator import ToscaValidator


@dataclass
class ApiRequest:
    """One call into the agent's REST-like API."""

    method: str  # "GET" | "POST"
    path: str  # e.g. "/deployments"
    token: bytes = b""
    body: Any = None


@dataclass
class ApiResponse:
    """The daemon's answer."""

    status: int
    body: Any = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass
class NegotiationRecord:
    """One agent-to-agent resource negotiation."""

    service: str
    from_agent: str
    to_agent: str
    accepted: bool
    reason: str = ""


class MirtoAgent:
    """One agent instance, owning a layer/component scope."""

    def __init__(self, name: str, layer: str, manager: MirtoManager,
                 auth_secret: bytes = b"mirto-agent-secret-key"):
        self.name = name
        self.layer = layer
        self.manager = manager
        self.auth = AuthModule(
            auth_secret,
            now_fn=lambda: manager.infrastructure.sim.now)
        self.validator = ToscaValidator()
        self.peers: list["MirtoAgent"] = []
        self.negotiations: list[NegotiationRecord] = []
        self.requests_served = 0

    # -- peering --------------------------------------------------------------

    def peer_with(self, other: "MirtoAgent") -> None:
        """Symmetric peering for resource negotiation."""
        if other is self:
            raise OrchestrationError("an agent cannot peer with itself")
        if other not in self.peers:
            self.peers.append(other)
        if self not in other.peers:
            other.peers.append(self)

    # -- the API daemon ------------------------------------------------------------

    def handle(self, request: ApiRequest) -> ApiResponse:
        """Route one API request through auth -> validation -> manager."""
        self.requests_served += 1
        try:
            user = self.auth.authenticate(request.token)
        except SecurityError as exc:
            return ApiResponse(401, {"error": str(exc)})
        route = (request.method.upper(), request.path)
        try:
            if route == ("POST", "/deployments"):
                self.auth.authorize(user, "deploy")
                return self._post_deployment(request.body)
            if route == ("GET", "/status"):
                self.auth.authorize(user, "observe")
                return ApiResponse(200, self.status())
            if route == ("GET", "/deployments"):
                self.auth.authorize(user, "observe")
                return ApiResponse(200, [
                    {"service": d.service_name,
                     "strategy": d.placement.strategy,
                     "makespan_s": d.report.makespan_s,
                     "deadline_met": d.deadline_met}
                    for d in self.manager.workload.deployments
                ])
            return ApiResponse(404, {"error": f"no route {route}"})
        except SecurityError as exc:
            return ApiResponse(403, {"error": str(exc)})
        except ValidationError as exc:
            return ApiResponse(422, {"error": str(exc),
                                     "problems": exc.problems})
        except OrchestrationError as exc:
            return ApiResponse(409, {"error": str(exc)})

    def _post_deployment(self, body: Any) -> ApiResponse:
        if isinstance(body, dict) and "csar" in body:
            archive = CsarArchive.from_bytes(body["csar"])
            service = archive.service
            strategy = body.get("strategy")
        elif isinstance(body, dict) and "tosca" in body:
            service = parse_service_template(body["tosca"])
            strategy = body.get("strategy")
        else:
            raise ValidationError(
                "deployment body needs a 'tosca' document or 'csar' bytes")
        self.validator.validate(service)
        outcome = self.deploy_or_negotiate(service, strategy)
        return ApiResponse(201, {
            "service": outcome.service_name,
            "placement": outcome.placement.assignment,
            "strategy": outcome.placement.strategy,
            "makespan_s": outcome.report.makespan_s,
            "energy_j": outcome.report.energy_j,
            "security_level": outcome.security_level,
            "deadline_met": outcome.deadline_met,
        })

    # -- negotiation -------------------------------------------------------------

    def deploy_or_negotiate(self, service, strategy=None
                            ) -> DeploymentOutcome:
        """Try locally; on placement failure, negotiate with peers."""
        try:
            return self.manager.deploy(service, strategy)
        except OrchestrationError as local_error:
            for peer in self.peers:
                try:
                    outcome = peer.manager.deploy(service, strategy)
                except OrchestrationError as peer_error:
                    self.negotiations.append(NegotiationRecord(
                        service.name, self.name, peer.name,
                        accepted=False, reason=str(peer_error)))
                    continue
                self.negotiations.append(NegotiationRecord(
                    service.name, self.name, peer.name, accepted=True))
                return outcome
            raise OrchestrationError(
                f"agent {self.name}: no local or peer capacity for "
                f"{service.name!r}: {local_error}") from local_error

    # -- introspection -----------------------------------------------------------

    def status(self) -> dict:
        infra = self.manager.infrastructure
        return {
            "agent": self.name,
            "layer": self.layer,
            "devices": len(infra.devices),
            "deployments": len(self.manager.workload.deployments),
            "negotiations": len(self.negotiations),
            "peers": [p.name for p in self.peers],
        }
