"""The MAPE-K control loop of the MIRTO Cognitive Engine.

Paper Sec. IV: "dynamic orchestration entails four steps executed in
loops [17], [18]: 1) sensing of internal and external triggers; 2)
evaluation of aggregated local and global information; 3) decision for
resource allocation/configuration to improve KPIs; and 4)
reconfiguration/reallocation." The Knowledge (K) part is the shared KB.
Each :meth:`MapeLoop.iterate` runs one full cycle and records per-stage
accounting for the Fig. 3 benchmark.
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field

from repro.core.errors import OrchestrationError
from repro.continuum.infrastructure import Infrastructure
from repro.kb.registry import ResourceRegistry
from repro.mirto.manager import MirtoManager, service_to_application
from repro.mirto.placement import (
    PlacementRequest,
    PlacementStrategy,
    SolveBudget,
)
from repro.monitoring.monitors import InfrastructureMonitor
from repro.runtime import RuntimeContext


@dataclass
class Trigger:
    """Something the Analyze stage decided needs a reaction."""

    # "overload" | "underload" | "trust-drop" | "fault" |
    # "degrade" | "restore"
    kind: str
    component: str
    detail: str


@dataclass
class PlannedAction:
    """A decision the Plan stage produced."""

    # "set-operating-point" | "flag-reallocation" | "suggest-placement"
    kind: str
    component: str
    parameter: str


@dataclass
class LoopRecord:
    """Accounting for one MAPE iteration."""

    iteration: int
    sensed_components: int
    triggers: list[Trigger]
    actions: list[PlannedAction]
    executed: int
    #: Causal span context of this cycle (None when tracing disabled).
    #: A remediation scenario resumes it (``tracer.resume``) so the
    #: repair/redeploy work lands in the same trace as the fault.
    span_context: object | None = None


class MapeLoop:
    """Monitor-Analyze-Plan-Execute over the shared knowledge base.

    The loop is wired to the infrastructure's
    :class:`~repro.runtime.RuntimeContext`: every phase transition is
    published on the shared bus (``mirto.mape.<phase>``), the internal
    monitor reads the canonical clock, and ``continuum.fault.*`` events
    arriving between iterations become external triggers for the next
    Analyze stage — the sensing of "internal and external triggers" the
    paper asks for.
    """

    def __init__(self, infrastructure: Infrastructure,
                 registry: ResourceRegistry,
                 manager: MirtoManager,
                 overload_threshold: float = 0.85,
                 underload_threshold: float = 0.15,
                 trust_threshold: float = 0.3,
                 ctx: RuntimeContext | None = None,
                 planner: PlacementStrategy | None = None,
                 plan_budget: SolveBudget | None = None):
        self.infrastructure = infrastructure
        self.registry = registry
        self.manager = manager
        #: Anytime solver the Plan stage races for replanning advice
        #: when a fault trigger fires (None disables replanning).
        self.planner = planner
        #: Budget per replanning solve — tight by design: Plan shares
        #: the control loop's cadence, so advice must come from an
        #: anytime incumbent, not an exhaustive search.
        self.plan_budget = plan_budget or SolveBudget(deadline_s=0.010)
        self.ctx = ctx or infrastructure.ctx
        self.monitor = InfrastructureMonitor("mape", ctx=self.ctx)
        self.overload_threshold = overload_threshold
        self.underload_threshold = underload_threshold
        self.trust_threshold = trust_threshold
        self.records: list[LoopRecord] = []
        #: (time_s, device, "fail"|"repair") for every fault seen on
        #: the shared bus, stamped with the canonical clock.
        self.fault_observations: list[tuple[float, str, str]] = []
        self._pending_faults: list[Trigger] = []
        # Span context of the fault that armed the pending triggers:
        # captured at delivery time (while the inject span is still
        # ambient), consumed as the parent of the next MAPE cycle so
        # the asynchronous reaction stays in the fault's trace.
        self._pending_fault_parent = None
        #: Chaos campaigns currently in progress (``chaos.campaign.*``
        #: bus accounting). While non-zero, Analyze steps graceful
        #: degradation in instead of chasing utilization triggers.
        self.chaos_campaigns_active = 0
        self._degraded: set[str] = set()
        self._degradation_started: float | None = None
        #: Total simulated time spent degraded (closed intervals only;
        #: see :attr:`degradation_time_s` for the live value).
        self._degradation_accum = 0.0
        metrics = self.ctx.metrics
        self._iterations = metrics.counter(
            "mirto.mape.iterations", "MAPE cycles run")
        self._tick_latency = metrics.histogram(
            "mirto.mape.tick_latency_s",
            "sim-time duration of one MAPE cycle")
        self.ctx.subscribe("continuum.fault.*", self._on_fault)
        self.ctx.subscribe("chaos.campaign.*", self._on_campaign)

    def _on_fault(self, topic: str, payload) -> None:
        device = (payload or {}).get("device", "?")
        kind = topic.rsplit(".", 1)[-1]
        self.fault_observations.append((self.ctx.now, device, kind))
        if kind == "fail":
            self._pending_faults.append(Trigger(
                "fault", device,
                f"device failed at t={self.ctx.now:.6f}"))
            parent = self.ctx.tracer.capture()
            if parent is not None:
                self._pending_fault_parent = parent

    def _on_campaign(self, topic: str, payload) -> None:
        kind = topic.rsplit(".", 1)[-1]
        if kind == "begin":
            self.chaos_campaigns_active += 1
        elif kind == "end":
            self.chaos_campaigns_active = max(
                0, self.chaos_campaigns_active - 1)

    @property
    def degradation_time_s(self) -> float:
        """Total simulated time applications spent stepped down."""
        total = self._degradation_accum
        if self._degradation_started is not None:
            total += self.ctx.now - self._degradation_started
        return total

    # -- the four stages -----------------------------------------------------

    def sense(self) -> dict[str, dict]:
        """Stage 1: pull telemetry from every device into the KB."""
        samples = {}
        for device in self.infrastructure.devices.values():
            sample = self.monitor.sample_device(device=device)
            self.registry.update_status(device.name, {
                "utilization": sample["utilization"],
                "queue_length": sample["queue_length"],
                "operating_point": device.operating_point.name,
            })
            samples[device.name] = sample
        return samples

    def analyze(self, samples: dict[str, dict]) -> list[Trigger]:
        """Stage 2: evaluate aggregated local and global information.

        Consumes the external fault triggers delivered on the shared
        bus since the previous cycle, then derives internal triggers
        from the sensed telemetry.
        """
        triggers, self._pending_faults = self._pending_faults, []
        if self.chaos_campaigns_active > 0:
            # Graceful degradation: while a chaos campaign is running,
            # utilization triggers would chase the injected turbulence;
            # instead step every capable application device down to its
            # low-power operating point and ride the storm out.
            for name, device in self.infrastructure.devices.items():
                if device.failed or name in self._degraded:
                    continue
                if "low-power" in device.operating_points:
                    triggers.append(Trigger(
                        "degrade", name, "chaos campaign in progress"))
                    self._degraded.add(name)
            if self._degraded and self._degradation_started is None:
                self._degradation_started = self.ctx.now
            for name in self.infrastructure.devices:
                trust = self.manager.security.trust.trust(name)
                if trust < self.trust_threshold:
                    triggers.append(Trigger(
                        "trust-drop", name, f"trust {trust:.2f}"))
            return triggers
        if self._degraded:
            # Campaign over: restore every device we stepped down.
            # Skip the utilization pass this cycle — the devices are
            # still at low-power, so an "underload" trigger would undo
            # the restore before it takes effect.
            for name in sorted(self._degraded):
                triggers.append(Trigger(
                    "restore", name, "chaos campaign ended"))
            self._degraded.clear()
            if self._degradation_started is not None:
                self._degradation_accum += \
                    self.ctx.now - self._degradation_started
                self._degradation_started = None
            for name in self.infrastructure.devices:
                trust = self.manager.security.trust.trust(name)
                if trust < self.trust_threshold:
                    triggers.append(Trigger(
                        "trust-drop", name, f"trust {trust:.2f}"))
            return triggers
        for name, sample in samples.items():
            utilization = sample["utilization"]
            if utilization > self.overload_threshold:
                triggers.append(Trigger(
                    "overload", name,
                    f"utilization {utilization:.2f} > "
                    f"{self.overload_threshold}"))
            elif utilization < self.underload_threshold and \
                    sample["queue_length"] == 0:
                triggers.append(Trigger(
                    "underload", name,
                    f"utilization {utilization:.2f} < "
                    f"{self.underload_threshold}"))
        for name in self.infrastructure.devices:
            trust = self.manager.security.trust.trust(name)
            if trust < self.trust_threshold:
                triggers.append(Trigger(
                    "trust-drop", name, f"trust {trust:.2f}"))
        return triggers

    def plan(self, triggers: list[Trigger]) -> list[PlannedAction]:
        """Stage 3: decide configuration changes per trigger."""
        actions = []
        for trigger in triggers:
            device = self.infrastructure.devices.get(trigger.component)
            if trigger.kind == "overload" and device is not None:
                if "performance" in device.operating_points:
                    actions.append(PlannedAction(
                        "set-operating-point", trigger.component,
                        "performance"))
                actions.append(PlannedAction(
                    "flag-reallocation", trigger.component, "offload"))
            elif trigger.kind == "underload" and device is not None:
                if "low-power" in device.operating_points:
                    actions.append(PlannedAction(
                        "set-operating-point", trigger.component,
                        "low-power"))
            elif trigger.kind == "degrade" and device is not None:
                actions.append(PlannedAction(
                    "set-operating-point", trigger.component,
                    "low-power"))
            elif trigger.kind == "restore" and device is not None:
                if "balanced" in device.operating_points:
                    actions.append(PlannedAction(
                        "set-operating-point", trigger.component,
                        "balanced"))
            elif trigger.kind in ("trust-drop", "fault"):
                actions.append(PlannedAction(
                    "flag-reallocation", trigger.component, "avoid"))
        if self.planner is not None \
                and any(t.kind == "fault" for t in triggers):
            actions.extend(self._replan())
        return actions

    def _replan(self) -> list[PlannedAction]:
        """Race the anytime solver for fresh placement advice.

        A fault invalidated assumptions behind the current placements,
        so Plan re-solves every deployed service under a tight budget
        and suggests the incumbent; Execute writes it into the KB,
        where the next deploy of that service picks it up as a
        warm start. Each solve runs in its own
        ``mirto.placement.solve`` span with per-backend metrics.
        """
        workload = self.manager.workload
        tracer = self.ctx.tracer
        actions = []
        for service_name in sorted(workload.services):
            service = workload.services[service_name]
            app = service_to_application(service)
            constraints = self.manager.security.constraints_for(service)
            constraints.source_device = workload._data_source()
            outcome = next(
                (d for d in reversed(workload.deployments)
                 if d.service_name == service_name), None)
            request = PlacementRequest(
                application=app, infrastructure=self.infrastructure,
                constraints=constraints, budget=self.plan_budget,
                warm_start=outcome.placement if outcome else None)
            with tracer.start_span(
                    "mirto.placement.solve", layer="mirto",
                    strategy=self.planner.name,
                    tasks=len(app)) as span:
                try:
                    result = self.planner.solve(request)
                except OrchestrationError:
                    # The fault may have left a task with no eligible
                    # device; nothing to suggest until repair.
                    continue
                attrs = getattr(span, "attrs", None)
                if attrs is not None:
                    attrs["cost"] = result.cost
                    attrs["optimal"] = result.optimal
                    attrs["provenance"] = result.provenance
                    attrs["backends"] = {s.backend: s.evaluations
                                         for s in result.stats}
            self.ctx.publish("mirto.placement.solve", {
                "service": service_name,
                "strategy": self.planner.name,
                "cost": result.cost,
                "optimal": result.optimal,
                "lower_bound": result.lower_bound,
                "provenance": result.provenance,
                "evaluations": sum(s.evaluations
                                   for s in result.stats),
            })
            actions.append(PlannedAction(
                "suggest-placement", service_name,
                json.dumps(dict(sorted(
                    result.placement.assignment.items())),
                    sort_keys=True, separators=(",", ":"))))
        return actions

    def execute(self, actions: list[PlannedAction]) -> int:
        """Stage 4: apply reconfigurations; returns how many applied."""
        executed = 0
        # Clear reallocation flags that this cycle no longer justifies,
        # so devices rejoin the placement pool once they recover.
        flagged_now = {a.component for a in actions
                       if a.kind == "flag-reallocation"}
        for key in list(self.registry.kb.range("status/reallocation/")):
            component = key[len("status/reallocation/"):]
            if component not in flagged_now:
                self.registry.kb.delete(key)
        for action in actions:
            if action.kind == "set-operating-point":
                device = self.infrastructure.device(action.component)
                if device.operating_point.name != action.parameter:
                    self.manager.node_manager.apply_operating_point(
                        action.component, action.parameter)
                    executed += 1
            elif action.kind == "flag-reallocation":
                self.registry.update_status(
                    f"reallocation/{action.component}",
                    {"advice": action.parameter})
                executed += 1
            elif action.kind == "suggest-placement":
                self.registry.update_status(
                    f"placement-advice/{action.component}",
                    {"assignment": json.loads(action.parameter)})
                executed += 1
        return executed

    def iterate(self) -> LoopRecord:
        """One full MAPE cycle; phase transitions land on the bus.

        The cycle runs inside a ``mirto.mape.cycle`` span with the four
        phases as child spans. When a fault armed pending triggers since
        the previous cycle, the cycle adopts the fault's captured span
        context as parent — linking the asynchronous reaction back into
        the fault's trace.
        """
        iteration = len(self.records)
        parent, self._pending_fault_parent = \
            self._pending_fault_parent, None
        tracer = self.ctx.tracer
        start_s = self.ctx.now
        with tracer.start_span("mirto.mape.cycle", layer="mirto",
                               parent=parent,
                               iteration=iteration) as cycle:
            with tracer.start_span("mirto.mape.sense", layer="mirto"):
                samples = self.sense()
                self.ctx.publish("mirto.mape.sense", {
                    "iteration": iteration, "components": len(samples)})
            with tracer.start_span("mirto.mape.analyze", layer="mirto"):
                triggers = self.analyze(samples)
                self.ctx.publish("mirto.mape.analyze", {
                    "iteration": iteration,
                    "triggers": [f"{t.kind}:{t.component}"
                                 for t in triggers]})
            with tracer.start_span("mirto.mape.plan", layer="mirto"):
                actions = self.plan(triggers)
                self.ctx.publish("mirto.mape.plan", {
                    "iteration": iteration,
                    "actions": [f"{a.kind}:{a.component}"
                                for a in actions]})
            with tracer.start_span("mirto.mape.execute", layer="mirto"):
                executed = self.execute(actions)
                self.ctx.publish("mirto.mape.execute", {
                    "iteration": iteration, "executed": executed})
        self._iterations.inc()
        self._tick_latency.observe(self.ctx.now - start_s)
        record = LoopRecord(
            iteration=iteration,
            sensed_components=len(samples),
            triggers=triggers,
            actions=actions,
            executed=executed,
            span_context=cycle.context,
        )
        self.records.append(record)
        return record
