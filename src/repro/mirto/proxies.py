"""MIRTO proxies: interface points to the KB and to deployment (Fig. 3).

The **KB proxy** gives the agent a namespaced window onto the shared
knowledge base. The **deployment proxy** "embodies the MYRTUS continuum
life-cycle controlling strategy based on LIQO": it translates a placed
TOSCA service into pods on the kube federation, reconciles until
everything runs (possibly offloaded through LIQO virtual nodes), and
rolls the whole service back if any piece cannot be placed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import NotFoundError, OrchestrationError
from repro.kb.store import KnowledgeBase, Watch
from repro.kube.liqo import ContinuumFederation
from repro.kube.objects import PodPhase, PodSpec, ResourceRequest
from repro.tosca.model import ServiceTemplate


class KbProxy:
    """Namespaced KB access for one agent."""

    def __init__(self, kb: KnowledgeBase, namespace: str):
        if not namespace or "/" in namespace:
            raise OrchestrationError(
                f"bad KB namespace {namespace!r}")
        self.kb = kb
        self.namespace = namespace

    def _key(self, key: str) -> str:
        return f"{self.namespace}/{key}"

    def put(self, key: str, value: Any) -> None:
        self.kb.put(self._key(key), value)

    def get(self, key: str) -> Any:
        return self.kb.get(self._key(key))

    def delete(self, key: str) -> None:
        self.kb.delete(self._key(key))

    def range(self, prefix: str = "") -> dict[str, Any]:
        full = self.kb.range(self._key(prefix))
        trim = len(self.namespace) + 1
        return {key[trim:]: value for key, value in full.items()}

    def watch(self, prefix: str, handler) -> Watch:
        return self.kb.watch(self._key(prefix), handler)


@dataclass
class DeployedService:
    """Bookkeeping for one service the proxy pushed to kube."""

    service_name: str
    cluster: str
    pod_uids: list[str] = field(default_factory=list)


def container_to_pod_spec(service: ServiceTemplate,
                          template_name: str) -> PodSpec:
    """TOSCA container template -> kube pod spec."""
    template = service.node_templates[template_name]
    props = template.properties
    min_level = "low"
    for policy in service.policies_for(template_name):
        if policy.type == "myrtus.policies.Security":
            min_level = policy.properties.get("min_level", min_level)
    return PodSpec(
        name=f"{service.name}-{template_name}",
        request=ResourceRequest(
            cpu_millicores=int(props.get("cpu_millicores", 100)),
            memory_bytes=int(props.get("memory_bytes", 64 * 1024**2)),
        ),
        labels={"app": service.name, "component": template_name},
        min_security_level=min_level,
    )


class DeploymentProxy:
    """LIQO-backed execution of deployment decisions, with rollback."""

    def __init__(self, federation: ContinuumFederation,
                 entry_cluster: str):
        if entry_cluster not in federation.clusters:
            raise NotFoundError(f"unknown cluster {entry_cluster!r}")
        self.federation = federation
        self.entry_cluster = entry_cluster
        self.deployed: dict[str, DeployedService] = {}

    def deploy_service(self, service: ServiceTemplate,
                       reconcile_rounds: int = 4) -> DeployedService:
        """Create pods for every container; all-or-nothing semantics."""
        if service.name in self.deployed:
            raise OrchestrationError(
                f"service {service.name!r} already deployed")
        cluster = self.federation.clusters[self.entry_cluster]
        record = DeployedService(service_name=service.name,
                                 cluster=self.entry_cluster)
        try:
            for template in service.containers():
                pod = cluster.create_pod(
                    container_to_pod_spec(service, template.name))
                record.pod_uids.append(pod.uid)
            self.federation.reconcile_all(rounds=reconcile_rounds)
            pending = [
                cluster.pods[uid].name for uid in record.pod_uids
                if cluster.pods[uid].phase is PodPhase.PENDING
            ]
            if pending:
                raise OrchestrationError(
                    f"unplaceable components: {pending}")
        except OrchestrationError:
            self._rollback(record)
            raise
        self.deployed[service.name] = record
        return record

    def _rollback(self, record: DeployedService) -> None:
        cluster = self.federation.clusters[record.cluster]
        for uid in record.pod_uids:
            if uid in cluster.pods:
                cluster.delete_pod(uid)
        for peering in self.federation.peerings:
            peering.reflect_status()

    def undeploy_service(self, service_name: str) -> None:
        """Remove a deployed service's pods (local and offloaded)."""
        if service_name not in self.deployed:
            raise NotFoundError(f"service {service_name!r} not deployed")
        record = self.deployed.pop(service_name)
        self._rollback(record)

    def service_phases(self, service_name: str) -> dict[str, str]:
        """Phase per component pod."""
        if service_name not in self.deployed:
            raise NotFoundError(f"service {service_name!r} not deployed")
        record = self.deployed[service_name]
        cluster = self.federation.clusters[record.cluster]
        return {
            cluster.pods[uid].name: cluster.pods[uid].phase.value
            for uid in record.pod_uids if uid in cluster.pods
        }
