"""The MIRTO Manager and its four optimization drivers (paper Sec. IV/VI).

"Each MIRTO Manager handles data and information of various types ...
multiple drivers are there, different cooperating elements within the
Manager": the **WL Manager** places and runs workloads, gathering (i)
resource state from the Resource Registry, (ii) historical data/models
from the KB, (iii) orchestration costs from the **Network Manager**, and
(iv) trust/security constraints from the **Privacy and Security
Manager**; the **Node Manager** "selects the configuration for HW
acceleration that is most suitable" (operating points).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import NotFoundError, OrchestrationError, SecurityError
from repro.continuum.devices import Device, Layer
from repro.continuum.infrastructure import Infrastructure
from repro.continuum.workload import (
    Application,
    KernelClass,
    PrivacyClass,
    Task,
    TaskRequirements,
)
from repro.kb.registry import ResourceRegistry
from repro.mirto.learning import LinearModel, QLearningAgent
from repro.mirto.placement import (
    ExecutionReport,
    Placement,
    PlacementConstraints,
    PlacementRequest,
    execute_placement,
    make_strategy,
)
from repro.net.slicing import SliceManager
from repro.security.levels import SecurityLevel, negotiate_level
from repro.security.trust import InteractionOutcome, TrustEngine
from repro.tosca.model import ServiceTemplate


def service_to_application(service: ServiceTemplate) -> Application:
    """Translate a TOSCA service's containers into a task DAG.

    Container properties carry the workload model (megaops, bytes,
    kernel class); ConnectsTo requirements become dependency edges.
    """
    app = Application(service.name)
    privacy_by_target: dict[str, PrivacyClass] = {}
    security_floor = "low"
    latency_budget = float("inf")
    for policy in service.policies:
        if policy.type == "myrtus.policies.Privacy":
            for target in policy.targets:
                privacy_by_target[target] = PrivacyClass(
                    policy.properties["data_class"])
        elif policy.type == "myrtus.policies.Security":
            security_floor = policy.properties.get("min_level", "low")
        elif policy.type == "myrtus.policies.Latency":
            latency_budget = min(
                latency_budget,
                policy.properties.get("end_to_end_budget_s",
                                      float("inf")))
    for template in service.containers():
        props = template.properties
        app.add_task(Task(
            name=template.name,
            megaops=float(props.get("megaops") or props.get(
                "cpu_millicores", 100)),
            input_bytes=int(props.get("input_bytes", 0)),
            output_bytes=int(props.get("output_bytes", 0)),
            kernel=KernelClass(props.get("kernel_class", "general")),
            memory_bytes=int(props.get("memory_bytes", 64 * 1024**2)),
            requirements=TaskRequirements(
                latency_budget_s=latency_budget,
                privacy=privacy_by_target.get(template.name,
                                              PrivacyClass.PUBLIC),
                min_security_level=security_floor,
            ),
        ))
    container_names = {t.name for t in service.containers()}
    for template in service.containers():
        for req in template.requirements:
            if req.name == "connection" and req.target in container_names:
                nbytes = int(template.properties.get("input_bytes", 0))
                app.connect(req.target, template.name, nbytes)
    return app


class PrivacySecurityManager:
    """Driver 4: security-level negotiation and trust filtering."""

    def __init__(self, infrastructure: Infrastructure,
                 trust_threshold: float = 0.3, now_fn=None):
        self.infrastructure = infrastructure
        self.trust_threshold = trust_threshold
        self.trust = TrustEngine("mirto", now_fn=now_fn
                                 or (lambda: infrastructure.sim.now))
        self.negotiations = 0

    def required_level(self, service: ServiceTemplate) -> SecurityLevel:
        level = SecurityLevel.LOW
        for policy in service.policies_of_type("myrtus.policies.Security"):
            candidate = SecurityLevel.parse(
                policy.properties.get("min_level", "low"))
            if candidate.rank > level.rank:
                level = candidate
        return level

    def negotiate_for_device(self, device: Device,
                             required: SecurityLevel) -> SecurityLevel:
        """The level traffic to *device* will actually use."""
        self.negotiations += 1
        return negotiate_level(required, [device.spec.max_security_level])

    def constraints_for(self, service: ServiceTemplate
                        ) -> PlacementConstraints:
        required = self.required_level(service)
        trusted = {name: self.trust.trust(name)
                   for name in self.infrastructure.devices}
        return PlacementConstraints(
            min_security_level=required.value,
            trust_threshold=self.trust_threshold,
            trusted=trusted,
        )

    def report_outcome(self, device_name: str, success: bool,
                       kpi_adherence: float) -> None:
        """Fold an execution outcome into the device's trust."""
        self.trust.observe(device_name, InteractionOutcome(
            self.infrastructure.sim.now, success, kpi_adherence))


class NetworkManager:
    """Driver 3: network costs, slices, and RL-based congestion advice."""

    def __init__(self, infrastructure: Infrastructure,
                 rng: random.Random | None = None):
        self.infrastructure = infrastructure
        self.slices = SliceManager(infrastructure.network)
        self.rng = rng or infrastructure.ctx.rng.python("mirto.network")
        # RL: states = discretized max-link congestion (5 bins),
        # actions = {keep-local, offload-to-fog, offload-to-cloud}.
        self.agent = QLearningAgent(n_states=5, n_actions=3, rng=self.rng)
        self.advice_given = 0

    def transfer_cost(self, src: str, dst: str, nbytes: int) -> float:
        """Orchestration-cost query used by the WL Manager."""
        return self.infrastructure.network.estimate_transfer_time(
            src, dst, nbytes)

    def congestion_state(self) -> int:
        """Discretized network congestion (0 = idle, 4 = saturated)."""
        links = self.infrastructure.network.links
        if not links:
            return 0
        worst = max(link.active_flows for link in links)
        return min(4, worst)

    def reserve_slice(self, name: str, tenant: str, src: str, dst: str,
                      fraction: float):
        """Guarantee bandwidth for a latency-critical application."""
        return self.slices.create_slice(name, tenant, src, dst, fraction)

    def advise_layer(self, explore: bool = True) -> Layer:
        """RL advice: which layer new work should prefer right now."""
        self.advice_given += 1
        action = self.agent.act(self.congestion_state(), explore=explore)
        return [Layer.EDGE, Layer.FOG, Layer.CLOUD][action]

    def reward_advice(self, state: int, action: int,
                      measured_latency_s: float,
                      budget_s: float) -> None:
        """Feed back how the advised decision worked out."""
        reward = 1.0 if measured_latency_s <= budget_s else -1.0
        self.agent.learn(state, action, reward, self.congestion_state())


class NodeManager:
    """Driver 2: per-node configuration (operating points).

    Selects operating points either from DSE-exported metadata
    ([29], [30]) or an ML latency model "to estimate the best operating
    point of a workload and, given the current status, change
    configuration accordingly" (Sec. IV).
    """

    def __init__(self, infrastructure: Infrastructure,
                 registry: ResourceRegistry | None = None):
        self.infrastructure = infrastructure
        self.registry = registry
        self.models: dict[str, LinearModel] = {}
        self.switches = 0

    def attach_model(self, device_name: str, model: LinearModel) -> None:
        """Install a (possibly federated) latency model for a device."""
        self.models[device_name] = model

    def predict_latency(self, device: Device, task: Task,
                        operating_point: str) -> float:
        """Model-based prediction if a model exists, else analytic."""
        model = self.models.get(device.name)
        if model is not None:
            perf = device.operating_points[operating_point].perf_scale
            features = np.array([[task.megaops / 1e3, 1.0 / perf,
                                  device.utilization()]])
            return float(model.predict(features)[0])
        return device.estimate_duration(task, operating_point)

    def select_operating_point(self, device: Device, task: Task,
                               latency_budget_s: float) -> str:
        """Cheapest (lowest-power) point predicted to meet the budget."""
        ranked = sorted(device.operating_points.values(),
                        key=lambda op: op.power_scale)
        for point in ranked:
            if self.predict_latency(device, task, point.name) \
                    <= latency_budget_s:
                return point.name
        return ranked[-1].name  # nothing meets it: run flat out

    def apply_operating_point(self, device_name: str, point: str) -> None:
        device = self.infrastructure.device(device_name)
        if device.operating_point.name != point:
            device.set_operating_point(point)
            self.switches += 1
            if self.registry is not None:
                self.registry.update_status(device_name, {
                    "operating_point": point,
                    "utilization": device.utilization(),
                })


@dataclass
class DeploymentOutcome:
    """What the WL Manager returns for one deployment request."""

    service_name: str
    placement: Placement
    report: ExecutionReport
    security_level: str
    deadline_met: bool


class WorkloadManager:
    """Driver 1: deployment and reallocation of workloads."""

    def __init__(self, infrastructure: Infrastructure,
                 security: PrivacySecurityManager,
                 network: NetworkManager,
                 node_manager: NodeManager,
                 registry: ResourceRegistry | None = None,
                 default_strategy: str = "greedy",
                 rng: random.Random | None = None):
        self.infrastructure = infrastructure
        self.security = security
        self.network = network
        self.node_manager = node_manager
        self.registry = registry
        self.default_strategy = default_strategy
        self.rng = rng or infrastructure.ctx.rng.python("mirto.workload")
        self.deployments: list[DeploymentOutcome] = []
        #: Deployed service templates by name — what MAPE's Plan phase
        #: replans against when triggers fire.
        self.services: dict[str, ServiceTemplate] = {}

    def _apply_reallocation_advice(self,
                                   constraints: PlacementConstraints
                                   ) -> None:
        """Honour MAPE 'avoid' flags: devices the Analyze stage marked
        (overloaded or distrusted) are excluded from new placements
        until the flag clears — the reallocation half of CH2's
        'dynamically updated for continuous optimization'."""
        if self.registry is None:
            return
        prefix = "status/reallocation/"
        for key, value in self.registry.kb.range(prefix).items():
            if value.get("advice") in ("avoid", "offload"):
                device_name = key[len(prefix):]
                constraints.trusted[device_name] = 0.0
                constraints.trust_threshold = max(
                    constraints.trust_threshold, 0.05)

    def _data_source(self) -> str | None:
        """Where application input data originates: the first edge
        device (sensors live at the edge in both use cases)."""
        edge = self.infrastructure.layer_devices(Layer.EDGE)
        return edge[0].name if edge else None

    def _placement_advice(self, service_name: str) -> Placement | None:
        """MAPE's last suggest-placement advice, as a warm start."""
        if self.registry is None:
            return None
        key = f"status/placement-advice/{service_name}"
        value = self.registry.kb.range(key).get(key)
        if not value:
            return None
        assignment = value.get("assignment")
        if not isinstance(assignment, dict):
            return None
        return Placement(dict(assignment), "advice")

    def deploy(self, service: ServiceTemplate,
               strategy: str | None = None) -> DeploymentOutcome:
        """Place, configure and execute one service request.

        Runs inside a ``mirto.deploy`` span (with the placement solve
        as a child span), so a deploy triggered in reaction to a fault
        shows up in the fault's causal trace.
        """
        ctx = self.infrastructure.ctx
        with ctx.tracer.start_span("mirto.deploy", layer="mirto",
                                   service=service.name):
            return self._deploy(service, strategy)

    def _deploy(self, service: ServiceTemplate,
                strategy: str | None) -> DeploymentOutcome:
        app = service_to_application(service)
        if len(app) == 0:
            raise OrchestrationError(
                f"service {service.name!r} has no deployable containers")
        constraints = self.security.constraints_for(service)
        constraints.source_device = self._data_source()
        self._apply_reallocation_advice(constraints)
        # Place against nominal device configurations; the Node Manager
        # tunes operating points afterwards. Otherwise a device left in
        # "performance" by the previous deployment would attract the
        # next placement, and the two decisions would chase each other.
        for device in self.infrastructure.devices.values():
            if "balanced" in device.operating_points and \
                    device.operating_point.name != "balanced":
                device.set_operating_point("balanced")
        placer = make_strategy(strategy or self.default_strategy, self.rng)
        request = PlacementRequest(
            application=app, infrastructure=self.infrastructure,
            constraints=constraints,
            warm_start=self._placement_advice(service.name))
        with self.infrastructure.ctx.tracer.start_span(
                "mirto.placement.solve", layer="mirto",
                strategy=strategy or self.default_strategy,
                tasks=len(app)) as span:
            result = placer.solve(request)
            placement = result.placement
            attrs = getattr(span, "attrs", None)
            if attrs is not None:
                attrs["cost"] = result.cost
                attrs["optimal"] = result.optimal
                attrs["provenance"] = result.provenance
                attrs["backends"] = {s.backend: s.evaluations
                                     for s in result.stats}
        self.infrastructure.ctx.publish("mirto.placement.solve", {
            "service": service.name,
            "strategy": placement.strategy,
            "cost": result.cost,
            "optimal": result.optimal,
            "lower_bound": result.lower_bound,
            "provenance": result.provenance,
            "evaluations": sum(s.evaluations for s in result.stats),
        })
        self.services[service.name] = service
        level = self.security.required_level(service)
        # Node Manager: configure the chosen devices. Each task gets a
        # share of the end-to-end budget proportional to its weight on
        # the compute critical path, scaled by a communication headroom
        # factor (transfers between devices consume budget too), so
        # per-task choices compose into an end-to-end deadline.
        budget = min((t.requirements.latency_budget_s for t in app.tasks),
                     default=float("inf"))
        critical = max(app.critical_path_megaops(), 1e-9)
        compute_share = 0.7  # reserve 30% of the budget for transfers
        for task in app.tasks:
            device = self.infrastructure.device(
                placement.device_of(task.name))
            if len(device.operating_points) > 1:
                task_budget = budget
                if budget != float("inf"):
                    task_budget = compute_share * budget \
                        * task.megaops / critical
                point = self.node_manager.select_operating_point(
                    device, task, task_budget)
                self.node_manager.apply_operating_point(device.name, point)
        report = execute_placement(app, placement, self.infrastructure,
                                   source_device=constraints.source_device)
        deadline_met = report.makespan_s <= budget
        # Feed trust back per device used.
        adherence = 1.0 if deadline_met else max(
            0.0, budget / max(report.makespan_s, 1e-12))
        for device_name in set(placement.assignment.values()):
            self.security.report_outcome(device_name, True, adherence)
        outcome = DeploymentOutcome(
            service_name=service.name,
            placement=placement,
            report=report,
            security_level=level.value,
            deadline_met=deadline_met,
        )
        self.deployments.append(outcome)
        self.infrastructure.ctx.publish("mirto.deploy.placed", {
            "service": service.name,
            "strategy": placement.strategy,
            "assignment": dict(sorted(placement.assignment.items())),
            "makespan_s": report.makespan_s,
            "energy_j": report.energy_j,
            "deadline_met": deadline_met,
        })
        if self.registry is not None:
            self.registry.update_status(f"deployment/{service.name}", {
                "strategy": placement.strategy,
                "makespan_s": report.makespan_s,
                "energy_j": report.energy_j,
                "deadline_met": deadline_met,
            })
        return outcome


@dataclass
class MirtoManager:
    """The composed manager: all four drivers plus shared state."""

    infrastructure: Infrastructure
    registry: ResourceRegistry | None = None
    default_strategy: str = "greedy"
    seed: int = 0

    def __post_init__(self):
        # All manager randomness hangs off the shared runtime seed
        # tree, namespaced by the manager seed so two managers with
        # different seeds on one continuum stay independent.
        rng_tree = self.infrastructure.ctx.rng
        self.security = PrivacySecurityManager(self.infrastructure)
        self.network = NetworkManager(
            self.infrastructure,
            rng_tree.python(f"mirto.network.{self.seed}"))
        self.node_manager = NodeManager(self.infrastructure, self.registry)
        self.workload = WorkloadManager(
            self.infrastructure, self.security, self.network,
            self.node_manager, self.registry,
            default_strategy=self.default_strategy,
            rng=rng_tree.python(f"mirto.workload.{self.seed}"))

    def deploy(self, service: ServiceTemplate,
               strategy: str | None = None) -> DeploymentOutcome:
        return self.workload.deploy(service, strategy)
