"""Swarm-intelligence optimizers (the LAKE contribution in the paper).

Two population-based optimizers used by the MIRTO Manager's cognitive
placement strategies:

* :class:`ParticleSwarmOptimizer` — continuous PSO, used over relaxed
  assignment vectors (each task gets a score per device; the argmax
  decodes to a placement);
* :class:`AntColonyOptimizer` — discrete ACO over task-to-device choices
  with pheromone reinforcement, a natural fit for combinatorial
  placement.

Both are generic: they optimize a user-supplied objective and are also
exercised directly by unit tests on analytic functions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError


@dataclass
class OptimizationTrace:
    """Best objective value per iteration (for convergence reporting)."""

    best_per_iteration: list[float] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        if len(self.best_per_iteration) < 2:
            return False
        return self.best_per_iteration[-1] < self.best_per_iteration[0]


class ParticleSwarmOptimizer:
    """Canonical PSO minimizing ``objective(position)``.

    Positions are real vectors in a box; inertia/cognitive/social
    parameters follow the standard constriction-free setup.
    """

    def __init__(self, dimensions: int, rng: random.Random,
                 particles: int = 20, inertia: float = 0.7,
                 cognitive: float = 1.5, social: float = 1.5,
                 bounds: tuple[float, float] = (-1.0, 1.0)):
        if dimensions < 1 or particles < 2:
            raise ConfigurationError(
                "PSO needs >=1 dimension and >=2 particles")
        if bounds[0] >= bounds[1]:
            raise ConfigurationError("invalid PSO bounds")
        self.dimensions = dimensions
        self.rng = rng
        self.num_particles = particles
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.bounds = bounds
        self.trace = OptimizationTrace()

    def minimize(self, objective: Callable[[list[float]], float],
                 iterations: int = 50) -> tuple[list[float], float]:
        """Run PSO; returns (best position, best value)."""
        stepper = self.steps(objective)
        best, value = next(stepper)  # initialization point
        for _ in range(iterations):
            best, value = next(stepper)
        return best, value

    def steps(self, objective: Callable[[list[float]], float]):
        """Generator form of :meth:`minimize` for anytime callers.

        The first ``next()`` initializes and evaluates the population;
        every later ``next()`` runs one full PSO iteration. Each yield
        is ``(best position, best value)`` so far. RNG draw order is
        identical to :meth:`minimize` — driving the generator for *k*
        iterations is bit-identical to ``minimize(..., iterations=k)``.
        """
        lo, hi = self.bounds
        span = hi - lo
        positions = [[self.rng.uniform(lo, hi)
                      for _ in range(self.dimensions)]
                     for _ in range(self.num_particles)]
        velocities = [[self.rng.uniform(-span, span) * 0.1
                       for _ in range(self.dimensions)]
                      for _ in range(self.num_particles)]
        personal_best = [list(p) for p in positions]
        personal_value = [objective(p) for p in positions]
        best_index = min(range(self.num_particles),
                         key=lambda i: personal_value[i])
        global_best = list(personal_best[best_index])
        global_value = personal_value[best_index]
        yield list(global_best), global_value
        # Local bindings keep attribute lookups out of the O(particles x
        # dimensions) update loop; arithmetic and RNG draw order are
        # exactly the canonical formulation's, so runs stay bit-stable.
        rand = self.rng.random
        inertia, cognitive, social = \
            self.inertia, self.cognitive, self.social
        dims = range(self.dimensions)
        while True:
            for i in range(self.num_particles):
                velocity = velocities[i]
                position = positions[i]
                pbest = personal_best[i]
                for d in dims:
                    r1, r2 = rand(), rand()
                    v = (inertia * velocity[d]
                         + cognitive * r1 * (pbest[d] - position[d])
                         + social * r2 * (global_best[d] - position[d]))
                    velocity[d] = v
                    position[d] = min(hi, max(lo, position[d] + v))
                value = objective(position)
                if value < personal_value[i]:
                    personal_value[i] = value
                    personal_best[i] = list(position)
                    if value < global_value:
                        global_value = value
                        global_best = list(position)
            self.trace.best_per_iteration.append(global_value)
            yield list(global_best), global_value


class FireflyOptimizer:
    """Firefly algorithm: attraction towards brighter (better) peers.

    Each firefly moves towards every brighter firefly with strength
    decaying in squared distance (``beta * exp(-gamma r^2)``), plus a
    small random walk. A third population-based strategy flavour for
    MIRTO agents alongside PSO and ACO.
    """

    def __init__(self, dimensions: int, rng: random.Random,
                 fireflies: int = 15, beta: float = 1.0,
                 gamma: float = 1.0, alpha: float = 0.2,
                 alpha_decay: float = 0.97,
                 bounds: tuple[float, float] = (-1.0, 1.0)):
        if dimensions < 1 or fireflies < 2:
            raise ConfigurationError(
                "firefly needs >=1 dimension and >=2 fireflies")
        if bounds[0] >= bounds[1]:
            raise ConfigurationError("invalid firefly bounds")
        self.dimensions = dimensions
        self.rng = rng
        self.num_fireflies = fireflies
        self.beta = beta
        self.gamma = gamma
        self.alpha = alpha
        self.alpha_decay = alpha_decay
        self.bounds = bounds
        self.trace = OptimizationTrace()

    def minimize(self, objective: Callable[[list[float]], float],
                 iterations: int = 40) -> tuple[list[float], float]:
        """Run the firefly algorithm; returns (best position, value)."""
        stepper = self.steps(objective)
        best, value = next(stepper)  # initialization point
        for _ in range(iterations):
            best, value = next(stepper)
        return best, value

    def steps(self, objective: Callable[[list[float]], float]):
        """Generator form of :meth:`minimize` for anytime callers.

        First ``next()`` initializes the population; each later
        ``next()`` is one iteration. Yields ``(best position, best
        value)``. The current-best firefly never moves (nothing is
        brighter), so the population minimum is non-increasing and the
        yielded best matches what :meth:`minimize` would return after
        the same number of iterations, draw for draw.
        """
        lo, hi = self.bounds
        span = hi - lo
        positions = [[self.rng.uniform(lo, hi)
                      for _ in range(self.dimensions)]
                     for _ in range(self.num_fireflies)]
        brightness = [objective(p) for p in positions]
        best_index = min(range(self.num_fireflies),
                         key=lambda k: brightness[k])
        yield list(positions[best_index]), brightness[best_index]
        alpha = self.alpha
        while True:
            for i in range(self.num_fireflies):
                for j in range(self.num_fireflies):
                    if brightness[j] >= brightness[i]:
                        continue  # j is not brighter (lower is better)
                    r_sq = sum((a - b) ** 2 for a, b in
                               zip(positions[i], positions[j]))
                    attraction = self.beta * math.exp(-self.gamma * r_sq)
                    for d in range(self.dimensions):
                        step = (attraction
                                * (positions[j][d] - positions[i][d])
                                + alpha * span
                                * (self.rng.random() - 0.5))
                        positions[i][d] = min(hi, max(
                            lo, positions[i][d] + step))
                    brightness[i] = objective(positions[i])
            alpha *= self.alpha_decay
            self.trace.best_per_iteration.append(min(brightness))
            best_index = min(range(self.num_fireflies),
                             key=lambda k: brightness[k])
            yield list(positions[best_index]), brightness[best_index]


class AntColonyOptimizer:
    """ACO over sequential discrete choices.

    Each of ``n_decisions`` positions picks one of ``n_options``;
    ``objective(choices)`` scores a complete assignment (lower is
    better). Pheromones reinforce good assignments; evaporation keeps
    exploration alive.
    """

    def __init__(self, n_decisions: int, n_options: int,
                 rng: random.Random, ants: int = 20,
                 evaporation: float = 0.3, alpha: float = 1.0,
                 beta: float = 0.0,
                 heuristic: Sequence[Sequence[float]] | None = None):
        if n_decisions < 1 or n_options < 1:
            raise ConfigurationError("ACO needs decisions and options")
        if not 0 < evaporation < 1:
            raise ConfigurationError("evaporation must be in (0, 1)")
        self.n_decisions = n_decisions
        self.n_options = n_options
        self.rng = rng
        self.ants = ants
        self.evaporation = evaporation
        self.alpha = alpha
        self.beta = beta
        self.heuristic = heuristic
        self.pheromone = [[1.0] * n_options for _ in range(n_decisions)]
        self.trace = OptimizationTrace()

    def _pick(self, decision: int) -> int:
        row = self.pheromone[decision]
        alpha = self.alpha
        if self.heuristic is not None and self.beta > 0:
            heuristic = self.heuristic[decision]
            beta = self.beta
            weights = [row[option] ** alpha
                       * max(heuristic[option], 1e-12) ** beta
                       for option in range(self.n_options)]
        elif alpha == 1.0:
            weights = row  # x ** 1.0 == x: pheromones are the weights
        else:
            weights = [w ** alpha for w in row]
        total = sum(weights)
        threshold = self.rng.random() * total
        cumulative = 0.0
        for option, weight in enumerate(weights):
            cumulative += weight
            if cumulative >= threshold:
                return option
        return self.n_options - 1

    def minimize(self, objective: Callable[[list[int]], float],
                 iterations: int = 40) -> tuple[list[int], float]:
        """Run ACO; returns (best choice vector, best value)."""
        stepper = self.steps(objective)
        global_best, global_value = next(stepper)  # empty init point
        for _ in range(iterations):
            global_best, global_value = next(stepper)
        assert global_best is not None
        return global_best, global_value

    def steps(self, objective: Callable[[list[int]], float]):
        """Generator form of :meth:`minimize` for anytime callers.

        ACO has no evaluated initial population, so the first ``next()``
        yields ``(None, inf)``; each later ``next()`` runs one iteration
        and yields ``(best choices, best value)`` so far, with RNG draw
        order identical to :meth:`minimize`.
        """
        global_best: list[int] | None = None
        global_value = math.inf
        yield None, global_value
        while True:
            solutions = []
            for _ in range(self.ants):
                choices = [self._pick(d) for d in range(self.n_decisions)]
                value = objective(choices)
                solutions.append((value, choices))
                if value < global_value:
                    global_value = value
                    global_best = list(choices)
            # Evaporate, then deposit proportional to solution quality.
            for decision in range(self.n_decisions):
                for option in range(self.n_options):
                    self.pheromone[decision][option] *= \
                        (1 - self.evaporation)
            solutions.sort(key=lambda pair: pair[0])
            for rank, (value, choices) in enumerate(solutions[:5]):
                deposit = 1.0 / (1.0 + value) / (1 + rank)
                for decision, option in enumerate(choices):
                    self.pheromone[decision][option] += deposit
            self.trace.best_per_iteration.append(global_value)
            yield list(global_best), global_value
