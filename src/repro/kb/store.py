"""Replicated key-value Knowledge Base on top of Raft.

Models the ETCD role the paper assigns to the KB: a strongly consistent
distributed store with revisions, prefix watches, and leases. Every
replica applies the same committed command stream to its own
:class:`KVState`, so all replicas converge; reads are served from the
leader's applied state (linearizable at this model's granularity).
Leases expire on the logical clock and, as in etcd, are revoked through
consensus by the leader so every replica deletes the attached keys at
the same log position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import ConsensusError, NotFoundError
from repro.kb.raft import RaftCluster

if False:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime import RuntimeContext


@dataclass
class KeyValue:
    """One stored value with its revision metadata."""

    key: str
    value: Any
    create_revision: int
    mod_revision: int
    lease_id: int | None = None


@dataclass
class WatchEvent:
    """Notification delivered to watchers."""

    event_type: str  # "put" or "delete"
    key: str
    value: Any
    revision: int


@dataclass
class Lease:
    lease_id: int
    ttl_ticks: int
    expires_at: int


class KVState:
    """The deterministic state machine each Raft replica applies."""

    def __init__(self):
        self.data: dict[str, KeyValue] = {}
        self.leases: dict[int, Lease] = {}
        self.revision = 0
        self.last_txn_succeeded = False
        self._events: list[WatchEvent] = []

    def apply(self, command: dict) -> None:
        op = command["op"]
        if op == "put":
            self.revision += 1
            key = command["key"]
            existing = self.data.get(key)
            self.data[key] = KeyValue(
                key=key,
                value=command["value"],
                create_revision=(existing.create_revision if existing
                                 else self.revision),
                mod_revision=self.revision,
                lease_id=command.get("lease"),
            )
            self._events.append(WatchEvent("put", key, command["value"],
                                           self.revision))
        elif op == "delete":
            key = command["key"]
            if key in self.data:
                self.revision += 1
                del self.data[key]
                self._events.append(WatchEvent("delete", key, None,
                                               self.revision))
        elif op == "grant_lease":
            self.leases[command["id"]] = Lease(
                lease_id=command["id"],
                ttl_ticks=command["ttl"],
                expires_at=command["now"] + command["ttl"],
            )
        elif op == "keepalive":
            lease = self.leases.get(command["id"])
            if lease is not None:
                lease.expires_at = command["now"] + lease.ttl_ticks
        elif op == "txn":
            self._apply_txn(command)
        elif op == "revoke_lease":
            lease = self.leases.pop(command["id"], None)
            if lease is not None:
                for key in [k for k, kv in self.data.items()
                            if kv.lease_id == command["id"]]:
                    self.revision += 1
                    del self.data[key]
                    self._events.append(WatchEvent("delete", key, None,
                                                   self.revision))
        else:
            raise ConsensusError(f"unknown KB command op {op!r}")

    def _check_compare(self, compare: list) -> bool:
        """Evaluate a txn's guard deterministically against local state."""
        for key, operator, expected in compare:
            entry = self.data.get(key)
            if operator == "exists":
                if entry is None:
                    return False
            elif operator == "absent":
                if entry is not None:
                    return False
            elif operator == "==":
                if entry is None or entry.value != expected:
                    return False
            elif operator == "!=":
                if entry is not None and entry.value == expected:
                    return False
            elif operator == "mod_rev==":
                if entry is None or entry.mod_revision != expected:
                    return False
            else:
                raise ConsensusError(
                    f"unknown txn comparison operator {operator!r}")
        return True

    def _apply_txn(self, command: dict) -> None:
        """etcd-style transaction: guard, then one branch, atomically.

        The guard is evaluated inside apply, so every replica takes the
        same branch at the same log position.
        """
        taken = (command["on_success"]
                 if self._check_compare(command.get("compare", []))
                 else command.get("on_failure", []))
        self.last_txn_succeeded = taken is command["on_success"]
        for sub in taken:
            if sub["op"] == "txn":
                raise ConsensusError("nested transactions not supported")
            self.apply(sub)

    def snapshot(self) -> dict:
        """Serializable copy of the full state machine (for Raft
        compaction). Pending watch events are volatile and excluded."""
        import copy as _copy
        return {
            "data": _copy.deepcopy(self.data),
            "leases": _copy.deepcopy(self.leases),
            "revision": self.revision,
        }

    def restore(self, state: dict) -> None:
        """Replace this replica's state with a snapshot."""
        import copy as _copy
        self.data = _copy.deepcopy(state["data"])
        self.leases = _copy.deepcopy(state["leases"])
        self.revision = state["revision"]
        self._events = []

    def drain_events(self) -> list[WatchEvent]:
        events, self._events = self._events, []
        return events


@dataclass
class Watch:
    """A registered prefix watch."""

    prefix: str
    handler: Callable[[WatchEvent], None]
    active: bool = True


class KnowledgeBase:
    """Client facade over the replicated store.

    The paper's "one ontological KB (logical view) ... distributed in
    different layers (implementation view)": each replica can live on a
    different continuum layer; clients talk to the cluster as one store.
    """

    def __init__(self, replicas: int = 3, seed: int = 0,
                 message_delay: int = 1, drop_probability: float = 0.0,
                 snapshot_threshold: int | None = None,
                 ctx: "RuntimeContext | None" = None):
        names = [f"kb-{i}" for i in range(replicas)]
        self._states = {name: KVState() for name in names}
        # With a RuntimeContext, Raft's randomness (election timeouts,
        # message drops) comes from the shared seed tree so the whole
        # system replays from one seed; without one, fall back to a
        # locally seeded generator.
        rng = (ctx.rng.python(f"kb.raft.{seed}") if ctx is not None
               else random.Random(seed))
        self.cluster = RaftCluster(
            names,
            rng,
            apply_fns={name: self._states[name].apply for name in names},
            message_delay=message_delay,
            drop_probability=drop_probability,
            snapshot_fns={name: self._states[name].snapshot
                          for name in names},
            restore_fns={name: self._states[name].restore
                         for name in names},
            snapshot_threshold=snapshot_threshold,
        )
        self._watches: list[Watch] = []
        self._next_lease_id = 1

    # -- replica plumbing ---------------------------------------------------------

    def _leader_state(self, max_ticks: int = 200) -> KVState:
        """State of the current leader, readable only once linearizable.

        A freshly elected leader may hold committed-but-unapplied entries
        from earlier terms; serving reads before its no-op commits would
        violate linearizability (etcd solves this with ReadIndex). We
        tick until the leader has applied its whole log.
        """
        leader = self.cluster.run_until_leader()
        node = self.cluster.nodes[leader]
        for _ in range(max_ticks):
            if node.last_applied >= node.last_log_index():
                return self._states[leader]
            self.cluster.tick()
            fresh = self.cluster.leader()
            if fresh is not None and fresh != leader:
                leader = fresh
                node = self.cluster.nodes[leader]
        raise ConsensusError(
            "leader could not establish a linearizable read point"
        )

    def _propose(self, command: dict) -> None:
        self.cluster.propose(command)
        self._dispatch_watches()

    def _dispatch_watches(self) -> None:
        state = self._leader_state()
        for event in state.drain_events():
            for watch in self._watches:
                if watch.active and event.key.startswith(watch.prefix):
                    watch.handler(event)

    # -- KV operations -----------------------------------------------------------

    def put(self, key: str, value: Any, lease_id: int | None = None) -> None:
        """Write *key* through consensus; optionally attach to a lease."""
        command = {"op": "put", "key": key, "value": value}
        if lease_id is not None:
            if lease_id not in self._leader_state().leases:
                raise NotFoundError(f"unknown lease {lease_id}")
            command["lease"] = lease_id
        self._propose(command)

    def get(self, key: str) -> Any:
        """Linearizable read from the leader's applied state."""
        state = self._leader_state()
        if key not in state.data:
            raise NotFoundError(f"key {key!r} not in knowledge base")
        return state.data[key].value

    def get_with_meta(self, key: str) -> KeyValue:
        """Read value plus revision metadata."""
        state = self._leader_state()
        if key not in state.data:
            raise NotFoundError(f"key {key!r} not in knowledge base")
        return state.data[key]

    def delete(self, key: str) -> None:
        """Delete *key* through consensus (no-op if absent)."""
        self._propose({"op": "delete", "key": key})

    def range(self, prefix: str) -> dict[str, Any]:
        """All key/value pairs under *prefix*."""
        state = self._leader_state()
        return {k: kv.value for k, kv in sorted(state.data.items())
                if k.startswith(prefix)}

    @property
    def revision(self) -> int:
        """Current store revision at the leader."""
        return self._leader_state().revision

    def txn(self, compare: list[tuple[str, str, Any]],
            on_success: list[dict],
            on_failure: list[dict] | None = None) -> bool:
        """Atomic compare-and-mutate (the etcd Txn primitive).

        *compare* entries are ``(key, operator, expected)`` with
        operators ``==``, ``!=``, ``exists``, ``absent``, ``mod_rev==``
        (pass ``None`` as expected for the unary ones). Branches are
        lists of plain put/delete commands. Returns True when the
        success branch ran. Example — acquire a coordination flag only
        if nobody holds it::

            kb.txn([("lock/ingest", "absent", None)],
                   on_success=[{"op": "put", "key": "lock/ingest",
                                "value": "agent-a"}])
        """
        command = {
            "op": "txn",
            "compare": [list(c) for c in compare],
            "on_success": list(on_success),
            "on_failure": list(on_failure or []),
        }
        self._propose(command)
        return self._leader_state().last_txn_succeeded

    # -- watches -------------------------------------------------------------------

    def watch(self, prefix: str,
              handler: Callable[[WatchEvent], None]) -> Watch:
        """Invoke *handler* for every change under *prefix*."""
        watch = Watch(prefix=prefix, handler=handler)
        self._watches.append(watch)
        return watch

    def cancel_watch(self, watch: Watch) -> None:
        watch.active = False
        if watch in self._watches:
            self._watches.remove(watch)

    # -- leases --------------------------------------------------------------------

    def grant_lease(self, ttl_ticks: int) -> int:
        """Create a lease; keys attached to it die when it expires."""
        lease_id = self._next_lease_id
        self._next_lease_id += 1
        self._propose({"op": "grant_lease", "id": lease_id,
                       "ttl": ttl_ticks, "now": self.cluster.now})
        return lease_id

    def keepalive(self, lease_id: int) -> None:
        """Refresh a lease's TTL."""
        if lease_id not in self._leader_state().leases:
            raise NotFoundError(f"unknown lease {lease_id}")
        self._propose({"op": "keepalive", "id": lease_id,
                       "now": self.cluster.now})

    def expire_due_leases(self) -> list[int]:
        """Leader-side revocation of expired leases (as etcd does)."""
        state = self._leader_state()
        expired = [lease.lease_id for lease in state.leases.values()
                   if lease.expires_at <= self.cluster.now]
        for lease_id in expired:
            self._propose({"op": "revoke_lease", "id": lease_id})
        return expired

    # -- maintenance ----------------------------------------------------------------

    def tick(self, steps: int = 1) -> None:
        """Advance logical time (heartbeats, elections, lease aging)."""
        self.cluster.tick(steps)
        self._dispatch_watches()

    def replica_states(self) -> dict[str, dict[str, Any]]:
        """Raw data per replica — used by tests to check convergence."""
        return {name: {k: kv.value for k, kv in state.data.items()}
                for name, state in self._states.items()}
