"""Resource Registry and telemetry history over the Knowledge Base.

Paper Sec. VI: "the KB is expected to keep track of the current status of
every single component (e.g. supportable security level and actual
security configuration, type of computing node and their availability,
etc.) in the Resource Registry, as well as of the historical batch data".

Components register under leases (liveness follows keepalives, exactly
like Kubernetes node leases on etcd); telemetry snapshots append to a
bounded per-component history used by learning-based MIRTO strategies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.core.errors import NotFoundError
from repro.kb.store import KnowledgeBase

_REGISTRY_PREFIX = "registry/"
_STATUS_PREFIX = "status/"


@dataclass(frozen=True)
class ComponentRecord:
    """Static registration record for one continuum component."""

    name: str
    kind: str
    layer: str
    max_security_level: str
    capabilities: dict[str, Any]

    def to_value(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "layer": self.layer,
            "max_security_level": self.max_security_level,
            "capabilities": dict(self.capabilities),
        }

    @staticmethod
    def from_value(value: dict) -> "ComponentRecord":
        return ComponentRecord(
            name=value["name"],
            kind=value["kind"],
            layer=value["layer"],
            max_security_level=value["max_security_level"],
            capabilities=dict(value.get("capabilities", {})),
        )


class ResourceRegistry:
    """Component availability/status snapshot plus telemetry history."""

    def __init__(self, kb: KnowledgeBase, lease_ttl_ticks: int = 60,
                 history_limit: int = 256):
        self.kb = kb
        self.lease_ttl_ticks = lease_ttl_ticks
        self.history_limit = history_limit
        self._leases: dict[str, int] = {}
        self._history: dict[str, deque[dict[str, Any]]] = {}

    # -- registration ------------------------------------------------------------

    def register(self, record: ComponentRecord) -> None:
        """Register a component under a fresh liveness lease."""
        lease_id = self.kb.grant_lease(self.lease_ttl_ticks)
        self._leases[record.name] = lease_id
        self.kb.put(_REGISTRY_PREFIX + record.name, record.to_value(),
                    lease_id=lease_id)

    def heartbeat(self, name: str) -> None:
        """Keep a component's registration alive."""
        if name not in self._leases:
            raise NotFoundError(f"component {name!r} never registered")
        self.kb.keepalive(self._leases[name])

    def deregister(self, name: str) -> None:
        """Explicitly remove a component and its status."""
        self.kb.delete(_REGISTRY_PREFIX + name)
        self.kb.delete(_STATUS_PREFIX + name)
        self._leases.pop(name, None)

    # -- queries -------------------------------------------------------------------

    def component(self, name: str) -> ComponentRecord:
        """Fetch one component's registration."""
        try:
            value = self.kb.get(_REGISTRY_PREFIX + name)
        except NotFoundError:
            raise NotFoundError(
                f"component {name!r} not registered (or lease expired)"
            ) from None
        return ComponentRecord.from_value(value)

    def snapshot(self) -> dict[str, ComponentRecord]:
        """All currently registered components."""
        return {
            key[len(_REGISTRY_PREFIX):]: ComponentRecord.from_value(value)
            for key, value in self.kb.range(_REGISTRY_PREFIX).items()
        }

    def components_in_layer(self, layer: str) -> list[ComponentRecord]:
        """Registered components on one continuum layer."""
        return [rec for rec in self.snapshot().values()
                if rec.layer == layer]

    def is_alive(self, name: str) -> bool:
        """True while the component's leased registration exists."""
        return _REGISTRY_PREFIX + name in self.kb.range(_REGISTRY_PREFIX)

    # -- status and history ----------------------------------------------------------

    def update_status(self, name: str, status: dict[str, Any]) -> None:
        """Publish a telemetry snapshot and append it to local history."""
        self.kb.put(_STATUS_PREFIX + name,
                    {**status, "tick": self.kb.cluster.now})
        history = self._history.setdefault(
            name, deque(maxlen=self.history_limit))
        history.append({**status, "tick": self.kb.cluster.now})

    def status(self, name: str) -> dict[str, Any]:
        """Most recent telemetry snapshot for *name*."""
        try:
            return self.kb.get(_STATUS_PREFIX + name)
        except NotFoundError:
            raise NotFoundError(f"no status for component {name!r}") from None

    def history(self, name: str) -> list[dict[str, Any]]:
        """Bounded telemetry history (the KB's 'historical batch data')."""
        return list(self._history.get(name, []))
