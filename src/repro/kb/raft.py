"""Raft consensus, implemented from scratch.

The paper proposes ETCD as the distributed Knowledge Base technology
(Sec. III footnote 3: "a strongly consistent, distributed key-value
store"). ETCD's consistency comes from Raft, so the reproduction
implements Raft itself: leader election with randomized timeouts, log
replication with the AppendEntries consistency check, and commitment by
majority match. The cluster runs on a deterministic logical clock with an
injectable message network supporting partitions, drops and delays —
which the knowledge-base ablation bench uses to measure availability
under failures.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.core.errors import ConsensusError
from repro.core.rng import derive_seed


class Role(str, Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


#: Sentinel command a fresh leader appends so entries from earlier terms
#: become committable (Raft paper Sec. 5.4.2). Never passed to apply_fn.
NOOP = object()


@dataclass(frozen=True)
class LogEntry:
    term: int
    command: Any


@dataclass
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclass
class RequestVoteReply:
    term: int
    voter: str
    granted: bool


@dataclass
class AppendEntries:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass
class AppendEntriesReply:
    term: int
    follower: str
    success: bool
    match_index: int


@dataclass
class InstallSnapshot:
    """Leader -> follower state transfer when the follower's next entry
    has already been compacted away (Raft paper Sec. 7)."""

    term: int
    leader: str
    snapshot_index: int
    snapshot_term: int
    state: Any


@dataclass
class _InFlight:
    deliver_at: int
    src: str
    dst: str
    message: Any


class RaftNode:
    """One Raft participant. Driven by :class:`RaftCluster`."""

    def __init__(self, name: str, peers: list[str], rng: random.Random,
                 apply_fn: Callable[[Any], None],
                 election_timeout_range: tuple[int, int] = (10, 20),
                 heartbeat_interval: int = 3,
                 snapshot_fn: Callable[[], Any] | None = None,
                 restore_fn: Callable[[Any], None] | None = None,
                 snapshot_threshold: int | None = None):
        self.name = name
        self.peers = [p for p in peers if p != name]
        self.rng = rng
        self.apply_fn = apply_fn
        self.election_timeout_range = election_timeout_range
        self.heartbeat_interval = heartbeat_interval
        # Log compaction (optional): snapshot_fn captures the state
        # machine, restore_fn reinstates it, and the threshold bounds
        # how many applied entries may accumulate before compaction.
        self.snapshot_fn = snapshot_fn
        self.restore_fn = restore_fn
        self.snapshot_threshold = snapshot_threshold
        self.snapshot_index = 0
        self.snapshot_term = 0
        self.snapshot_state: Any = None
        self.snapshots_taken = 0
        self.snapshots_installed = 0
        # Persistent state.
        self.current_term = 0
        self.voted_for: str | None = None
        self.log: list[LogEntry] = []
        # Volatile state.
        self.role = Role.FOLLOWER
        self.commit_index = 0  # 1-based; 0 = nothing committed
        self.last_applied = 0
        self.leader_hint: str | None = None
        # Leader state.
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        # Timers (logical ticks).
        self._election_deadline = 0
        self._next_heartbeat = 0
        self.reset_election_timer(0)

    # -- helpers ------------------------------------------------------------

    def last_log_index(self) -> int:
        return self.snapshot_index + len(self.log)

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else self.snapshot_term

    def _term_at(self, index: int) -> int:
        """Term of the entry at absolute *index* (0 for the empty log
        origin; snapshot_term at the snapshot boundary)."""
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        return self.log[index - self.snapshot_index - 1].term

    def _entry(self, index: int) -> LogEntry:
        return self.log[index - self.snapshot_index - 1]

    def reset_election_timer(self, now: int) -> None:
        low, high = self.election_timeout_range
        self._election_deadline = now + self.rng.randint(low, high)

    def _become_follower(self, term: int, now: int) -> None:
        self.role = Role.FOLLOWER
        self.current_term = term
        self.voted_for = None
        self.reset_election_timer(now)

    def _become_leader(self, now: int) -> None:
        self.role = Role.LEADER
        self.leader_hint = self.name
        # Committing this no-op from the new term also commits every
        # earlier entry already replicated to a majority.
        self.log.append(LogEntry(term=self.current_term, command=NOOP))
        self.next_index = {p: self.last_log_index() for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self._next_heartbeat = now  # send heartbeats immediately
        if not self.peers:
            self._advance_commit_index()

    # -- tick-driven behaviour ------------------------------------------------

    def tick(self, now: int, send: Callable[[str, Any], None]) -> None:
        """Advance timers; possibly start an election or send heartbeats."""
        if self.role is Role.LEADER:
            if now >= self._next_heartbeat:
                self._broadcast_append_entries(send)
                self._next_heartbeat = now + self.heartbeat_interval
            return
        if now >= self._election_deadline:
            self._start_election(now, send)

    def _start_election(self, now: int, send) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._votes = {self.name}
        self.reset_election_timer(now)
        if len(self._votes) * 2 > len(self.peers) + 1:
            # Single-node cluster: we already hold a majority.
            self._become_leader(now)
            return
        for peer in self.peers:
            send(peer, RequestVote(
                term=self.current_term,
                candidate=self.name,
                last_log_index=self.last_log_index(),
                last_log_term=self.last_log_term(),
            ))

    def _broadcast_append_entries(self, send) -> None:
        for peer in self.peers:
            self._send_append_entries(peer, send)

    def _send_append_entries(self, peer: str, send) -> None:
        next_idx = self.next_index.get(peer, self.last_log_index() + 1)
        if next_idx <= self.snapshot_index:
            # The entries the follower needs were compacted away: ship
            # the whole snapshot instead.
            send(peer, InstallSnapshot(
                term=self.current_term,
                leader=self.name,
                snapshot_index=self.snapshot_index,
                snapshot_term=self.snapshot_term,
                state=copy.deepcopy(self.snapshot_state),
            ))
            return
        prev_index = next_idx - 1
        prev_term = self._term_at(prev_index)
        entries = tuple(self.log[next_idx - self.snapshot_index - 1:])
        send(peer, AppendEntries(
            term=self.current_term,
            leader=self.name,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=entries,
            leader_commit=self.commit_index,
        ))

    # -- message handling --------------------------------------------------------

    def handle(self, message: Any, now: int, send) -> None:
        """Process one incoming Raft message."""
        term = getattr(message, "term", 0)
        if term > self.current_term:
            self._become_follower(term, now)
        if isinstance(message, RequestVote):
            self._on_request_vote(message, now, send)
        elif isinstance(message, RequestVoteReply):
            self._on_vote_reply(message, now)
        elif isinstance(message, AppendEntries):
            self._on_append_entries(message, now, send)
        elif isinstance(message, AppendEntriesReply):
            self._on_append_reply(message, send)
        elif isinstance(message, InstallSnapshot):
            self._on_install_snapshot(message, now, send)

    def _on_request_vote(self, msg: RequestVote, now: int, send) -> None:
        granted = False
        if msg.term >= self.current_term:
            up_to_date = (
                msg.last_log_term > self.last_log_term()
                or (msg.last_log_term == self.last_log_term()
                    and msg.last_log_index >= self.last_log_index())
            )
            if up_to_date and self.voted_for in (None, msg.candidate):
                granted = True
                self.voted_for = msg.candidate
                self.reset_election_timer(now)
        send(msg.candidate, RequestVoteReply(
            term=self.current_term, voter=self.name, granted=granted))

    def _on_vote_reply(self, msg: RequestVoteReply, now: int) -> None:
        if self.role is not Role.CANDIDATE or msg.term != self.current_term:
            return
        if msg.granted:
            self._votes.add(msg.voter)
            if len(self._votes) * 2 > len(self.peers) + 1:
                self._become_leader(now)

    def _on_append_entries(self, msg: AppendEntries, now: int, send) -> None:
        if msg.term < self.current_term:
            send(msg.leader, AppendEntriesReply(
                term=self.current_term, follower=self.name,
                success=False, match_index=0))
            return
        # Valid leader for this term.
        if self.role is not Role.FOLLOWER:
            self._become_follower(msg.term, now)
        self.current_term = msg.term
        self.leader_hint = msg.leader
        self.reset_election_timer(now)
        # Entries at or below our snapshot are already committed and
        # applied; trim the request to the part we still need.
        prev_log_index = msg.prev_log_index
        prev_log_term = msg.prev_log_term
        entries = msg.entries
        if prev_log_index < self.snapshot_index:
            skip = self.snapshot_index - prev_log_index
            if len(entries) <= skip:
                send(msg.leader, AppendEntriesReply(
                    term=self.current_term, follower=self.name,
                    success=True, match_index=self.snapshot_index))
                return
            entries = entries[skip:]
            prev_log_index = self.snapshot_index
            prev_log_term = self.snapshot_term
        # Consistency check on the previous entry.
        if prev_log_index > self.last_log_index():
            send(msg.leader, AppendEntriesReply(
                term=self.current_term, follower=self.name,
                success=False, match_index=0))
            return
        if prev_log_index > self.snapshot_index and \
                self._term_at(prev_log_index) != prev_log_term:
            # Conflicting entry: truncate.
            del self.log[prev_log_index - self.snapshot_index - 1:]
            send(msg.leader, AppendEntriesReply(
                term=self.current_term, follower=self.name,
                success=False, match_index=0))
            return
        # Append new entries (overwriting any conflicting suffix).
        index = prev_log_index
        for entry in entries:
            index += 1
            if index <= self.last_log_index():
                if self._term_at(index) != entry.term:
                    del self.log[index - self.snapshot_index - 1:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.last_log_index())
            self._apply_committed()
        send(msg.leader, AppendEntriesReply(
            term=self.current_term, follower=self.name,
            success=True, match_index=index))

    def _on_append_reply(self, msg: AppendEntriesReply, send) -> None:
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        if msg.success:
            self.match_index[msg.follower] = max(
                self.match_index.get(msg.follower, 0), msg.match_index)
            self.next_index[msg.follower] = \
                self.match_index[msg.follower] + 1
            self._advance_commit_index()
        else:
            # Back off and retry (dropping to or below the snapshot
            # boundary makes the next send an InstallSnapshot).
            self.next_index[msg.follower] = max(
                1, self.next_index.get(msg.follower, 1) - 1)
            self._send_append_entries(msg.follower, send)

    def _advance_commit_index(self) -> None:
        floor = max(self.commit_index, self.snapshot_index)
        for candidate in range(self.last_log_index(), floor, -1):
            if self._term_at(candidate) != self.current_term:
                continue  # Raft only commits entries from the current term
            votes = 1 + sum(
                1 for p in self.peers
                if self.match_index.get(p, 0) >= candidate
            )
            if votes * 2 > len(self.peers) + 1:
                self.commit_index = candidate
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            command = self._entry(self.last_applied).command
            if command is not NOOP:
                self.apply_fn(command)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Snapshot the state machine and discard applied log entries."""
        if self.snapshot_fn is None or self.snapshot_threshold is None:
            return
        applied_since = self.last_applied - self.snapshot_index
        if applied_since < self.snapshot_threshold:
            return
        new_term = self._term_at(self.last_applied)
        self.snapshot_state = self.snapshot_fn()
        del self.log[: self.last_applied - self.snapshot_index]
        self.snapshot_index = self.last_applied
        self.snapshot_term = new_term
        self.snapshots_taken += 1

    def _on_install_snapshot(self, msg: InstallSnapshot, now: int,
                             send) -> None:
        if msg.term < self.current_term:
            send(msg.leader, AppendEntriesReply(
                term=self.current_term, follower=self.name,
                success=False, match_index=0))
            return
        if self.role is not Role.FOLLOWER:
            self._become_follower(msg.term, now)
        self.current_term = msg.term
        self.leader_hint = msg.leader
        self.reset_election_timer(now)
        if msg.snapshot_index <= self.snapshot_index:
            # Stale snapshot; acknowledge what we already cover.
            send(msg.leader, AppendEntriesReply(
                term=self.current_term, follower=self.name,
                success=True, match_index=self.snapshot_index))
            return
        if self.restore_fn is None:
            raise ConsensusError(
                f"{self.name}: received a snapshot but has no restore_fn")
        self.restore_fn(copy.deepcopy(msg.state))
        self.snapshot_state = copy.deepcopy(msg.state)
        self.snapshot_index = msg.snapshot_index
        self.snapshot_term = msg.snapshot_term
        self.log = []
        self.commit_index = msg.snapshot_index
        self.last_applied = msg.snapshot_index
        self.snapshots_installed += 1
        send(msg.leader, AppendEntriesReply(
            term=self.current_term, follower=self.name,
            success=True, match_index=msg.snapshot_index))

    # -- client interface ------------------------------------------------------

    def propose(self, command: Any) -> int:
        """Leader-only: append a command; returns its log index."""
        if self.role is not Role.LEADER:
            raise ConsensusError(
                f"{self.name} is not the leader "
                f"(hint: {self.leader_hint or 'unknown'})"
            )
        self.log.append(LogEntry(term=self.current_term, command=command))
        if not self.peers:
            self._advance_commit_index()
        return self.last_log_index()


class RaftCluster:
    """A deterministic Raft cluster on a logical clock.

    Messages travel through an in-memory network with a configurable
    delay, optional random drops, and link-level partitions.
    """

    def __init__(self, node_names: list[str], rng: random.Random,
                 apply_fns: dict[str, Callable[[Any], None]] | None = None,
                 message_delay: int = 1, drop_probability: float = 0.0,
                 snapshot_fns: dict[str, Callable[[], Any]] | None = None,
                 restore_fns: dict[str,
                                   Callable[[Any], None]] | None = None,
                 snapshot_threshold: int | None = None):
        if len(node_names) < 1:
            raise ConsensusError("cluster needs at least one node")
        self.rng = rng
        self.now = 0
        self.message_delay = message_delay
        self.drop_probability = drop_probability
        self._partitioned: set[frozenset[str]] = set()
        self._stopped: set[str] = set()
        self._in_flight: list[_InFlight] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        self.nodes: dict[str, RaftNode] = {}
        apply_fns = apply_fns or {}
        snapshot_fns = snapshot_fns or {}
        restore_fns = restore_fns or {}
        cluster_seed = rng.getrandbits(63)
        for name in node_names:
            node_rng = random.Random(derive_seed(cluster_seed, name))
            self.nodes[name] = RaftNode(
                name, node_names, node_rng,
                apply_fns.get(name, lambda cmd: None),
                snapshot_fn=snapshot_fns.get(name),
                restore_fn=restore_fns.get(name),
                snapshot_threshold=snapshot_threshold)

    # -- failure injection -----------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut the link between nodes *a* and *b* (both directions)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str | None = None, b: str | None = None) -> None:
        """Heal one link, or all partitions when called without args."""
        if a is None:
            self._partitioned.clear()
        else:
            self._partitioned.discard(frozenset((a, b)))

    def isolate(self, name: str) -> None:
        """Partition *name* from every other node."""
        for other in self.nodes:
            if other != name:
                self.partition(name, other)

    def stop(self, name: str) -> None:
        """Crash-stop a node (it neither sends nor receives)."""
        self._stopped.add(name)

    def restart(self, name: str) -> None:
        """Restart a crashed node.

        Persistent state (term, vote, log) survives; volatile leadership
        does not — the node comes back as a follower, as after a real
        process restart.
        """
        self._stopped.discard(name)
        node = self.nodes[name]
        node.role = Role.FOLLOWER
        node.reset_election_timer(self.now)

    # -- simulation loop -----------------------------------------------------------

    def _send_from(self, src: str):
        def send(dst: str, message: Any) -> None:
            self.messages_sent += 1
            if src in self._stopped or dst in self._stopped:
                self.messages_dropped += 1
                return
            if frozenset((src, dst)) in self._partitioned:
                self.messages_dropped += 1
                return
            if self.drop_probability and \
                    self.rng.random() < self.drop_probability:
                self.messages_dropped += 1
                return
            self._in_flight.append(_InFlight(
                deliver_at=self.now + self.message_delay,
                src=src, dst=dst, message=message))
        return send

    def tick(self, steps: int = 1) -> None:
        """Advance the logical clock, delivering messages and timers."""
        for _ in range(steps):
            self.now += 1
            # Deliver due messages.
            due = [m for m in self._in_flight if m.deliver_at <= self.now]
            self._in_flight = [m for m in self._in_flight
                               if m.deliver_at > self.now]
            for envelope in due:
                if envelope.dst in self._stopped:
                    self.messages_dropped += 1
                    continue
                if frozenset((envelope.src, envelope.dst)) in \
                        self._partitioned:
                    self.messages_dropped += 1
                    continue
                self.nodes[envelope.dst].handle(
                    envelope.message, self.now,
                    self._send_from(envelope.dst))
            # Node timers.
            for name, node in self.nodes.items():
                if name not in self._stopped:
                    node.tick(self.now, self._send_from(name))

    def run_until_leader(self, max_ticks: int = 500) -> str:
        """Tick until a live node is leader; returns its name."""
        for _ in range(max_ticks):
            leader = self.leader()
            if leader is not None:
                return leader
            self.tick()
        raise ConsensusError(f"no leader after {max_ticks} ticks")

    def leader(self) -> str | None:
        """The current live leader with the highest term, if any."""
        leaders = [n for name, n in self.nodes.items()
                   if n.role is Role.LEADER and name not in self._stopped]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term).name

    def propose(self, command: Any, settle_ticks: int = 30) -> None:
        """Propose via the current leader and tick until it commits."""
        leader_name = self.run_until_leader()
        leader = self.nodes[leader_name]
        index = leader.propose(command)
        for _ in range(settle_ticks):
            self.tick()
            if leader.commit_index >= index:
                return
        raise ConsensusError(
            f"command at index {index} not committed after "
            f"{settle_ticks} ticks"
        )
