"""Distributed Knowledge Base: Raft consensus, replicated KV, registry.

The paper's shared ontological KB (Sec. III, Sec. VI) implemented as an
etcd-style strongly consistent store: Raft leader election and log
replication (:mod:`repro.kb.raft`), a replicated key-value state machine
with revisions, prefix watches and leases (:mod:`repro.kb.store`), and
the Resource Registry / telemetry history on top
(:mod:`repro.kb.registry`).
"""

from repro.kb.raft import (
    AppendEntries,
    InstallSnapshot,
    AppendEntriesReply,
    LogEntry,
    RaftCluster,
    RaftNode,
    RequestVote,
    RequestVoteReply,
    Role,
)
from repro.kb.store import (
    KeyValue,
    KnowledgeBase,
    KVState,
    Lease,
    Watch,
    WatchEvent,
)
from repro.kb.registry import ComponentRecord, ResourceRegistry

__all__ = [
    "AppendEntries",
    "InstallSnapshot",
    "AppendEntriesReply",
    "LogEntry",
    "RaftCluster",
    "RaftNode",
    "RequestVote",
    "RequestVoteReply",
    "Role",
    "KeyValue",
    "KnowledgeBase",
    "KVState",
    "Lease",
    "Watch",
    "WatchEvent",
    "ComponentRecord",
    "ResourceRegistry",
]
