"""Evolutionary synthesis of swarm-agent local rules (FREVO analogue).

"FREVO generates the local rules for the swarm agents to be used within
the MIRTO Cognitive Engine. To explore the effect of changes to the
local rules on system's KPIs, a simulator such as DynAA can be used"
(paper Sec. V). This module evolves the parameter vector of a
:class:`SwarmRule` — the weights a swarm placement agent applies to
local observations — against a user-supplied fitness function that runs
the rule in a simulation and returns a KPI score.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class SwarmRule:
    """A parameterized local decision rule for swarm agents.

    The weights score a candidate placement target from locally
    observable signals; agents pick the best-scoring target. This is the
    artifact "Modelio is used to synthesize the swarm agents ... from
    the local rules".
    """

    utilization_weight: float
    latency_weight: float
    energy_weight: float
    trust_weight: float
    exploration: float  # probability of a random choice

    def as_vector(self) -> list[float]:
        return [self.utilization_weight, self.latency_weight,
                self.energy_weight, self.trust_weight, self.exploration]

    @staticmethod
    def from_vector(vector: list[float]) -> "SwarmRule":
        if len(vector) != 5:
            raise ConfigurationError("swarm rule vector must have 5 genes")
        exploration = min(1.0, max(0.0, vector[4]))
        return SwarmRule(vector[0], vector[1], vector[2], vector[3],
                         exploration)

    def score(self, utilization: float, latency_s: float, energy_j: float,
              trust: float) -> float:
        """Score a candidate target; higher is better."""
        return (-self.utilization_weight * utilization
                - self.latency_weight * latency_s
                - self.energy_weight * energy_j
                + self.trust_weight * trust)


@dataclass
class EvolutionRecord:
    """Best fitness per generation, for convergence reporting."""

    generation: int
    best_fitness: float
    mean_fitness: float


class RuleEvolver:
    """(mu + lambda) evolution strategy over rule parameter vectors."""

    def __init__(self, fitness_fn: Callable[[SwarmRule], float],
                 rng: random.Random, mu: int = 6, lam: int = 12,
                 generations: int = 20, sigma: float = 0.3):
        if mu < 1 or lam < mu:
            raise ConfigurationError("need lambda >= mu >= 1")
        self.fitness_fn = fitness_fn
        self.rng = rng
        self.mu = mu
        self.lam = lam
        self.generations = generations
        self.sigma = sigma
        self.history: list[EvolutionRecord] = []

    def _random_rule(self) -> SwarmRule:
        return SwarmRule.from_vector(
            [self.rng.uniform(-1, 1) for _ in range(4)]
            + [self.rng.uniform(0, 0.3)])

    def _mutate(self, rule: SwarmRule) -> SwarmRule:
        vector = [g + self.rng.gauss(0, self.sigma)
                  for g in rule.as_vector()]
        return SwarmRule.from_vector(vector)

    def evolve(self) -> tuple[SwarmRule, float]:
        """Run the evolution; returns (best rule, best fitness).

        Fitness is maximized.
        """
        population = [self._random_rule() for _ in range(self.mu)]
        scored = [(self.fitness_fn(rule), rule) for rule in population]
        for generation in range(self.generations):
            offspring = []
            for _ in range(self.lam):
                parent = self.rng.choice(scored)[1]
                child = self._mutate(parent)
                offspring.append((self.fitness_fn(child), child))
            pool = scored + offspring
            pool.sort(key=lambda pair: pair[0], reverse=True)
            scored = pool[: self.mu]
            fitnesses = [f for f, _ in scored]
            self.history.append(EvolutionRecord(
                generation=generation,
                best_fitness=fitnesses[0],
                mean_fitness=sum(fitnesses) / len(fitnesses)))
        return scored[0][1], scored[0][0]
