"""MYRTUS Design and Programming Environment (technical pillar 3).

The three-step flow of paper Fig. 4: modeling/analysis
(:mod:`repro.dpe.modeling`, :mod:`repro.dpe.adt`), model-to-
implementation via the mini-MLIR (:mod:`repro.dpe.mlir`), and
node-level optimization/deployment (:mod:`repro.dpe.hls`,
:mod:`repro.dpe.dse`, :mod:`repro.dpe.onnxflow`), plus evolutionary
swarm-rule synthesis (:mod:`repro.dpe.frevo`).
"""

from repro.dpe.modeling import (
    ComponentModel,
    DEFAULT_PLATFORM,
    DeploymentSpecification,
    DesignFlow,
    KpiEstimate,
    ScenarioModel,
    estimate_kpis,
)
from repro.dpe.adt import (
    AttackDefenceTree,
    AttackNode,
    COUNTERMEASURE_LIBRARY,
    Defence,
    Refinement,
    SynthesisResult,
    countermeasure_snippets,
    synthesize_countermeasures,
)
from repro.dpe.dse import (
    AnnealingExplorer,
    EvaluationResult,
    ExhaustiveExplorer,
    GeneticExplorer,
    Mapping,
    MappingEvaluator,
    PlatformModel,
    ProcessorModel,
    export_operating_points,
    pareto_front,
)
from repro.dpe.frevo import EvolutionRecord, RuleEvolver, SwarmRule
from repro.dpe.hls import (
    HlsResult,
    MdcConfiguration,
    ReconfigurableAccelerator,
    ResourceEstimate,
    compose,
    synthesize,
)
from repro.dpe.onnxflow import (
    NnDeployment,
    OnnxModel,
    OnnxNode,
    import_onnx,
    lower_to_hardware,
    reference_mlp,
)

__all__ = [
    "ComponentModel", "DEFAULT_PLATFORM", "DeploymentSpecification",
    "DesignFlow", "KpiEstimate", "ScenarioModel", "estimate_kpis",
    "AttackDefenceTree", "AttackNode", "COUNTERMEASURE_LIBRARY", "Defence",
    "Refinement", "SynthesisResult", "countermeasure_snippets",
    "synthesize_countermeasures", "AnnealingExplorer", "EvaluationResult",
    "ExhaustiveExplorer", "GeneticExplorer", "Mapping", "MappingEvaluator",
    "PlatformModel", "ProcessorModel", "export_operating_points",
    "pareto_front", "EvolutionRecord", "RuleEvolver", "SwarmRule",
    "HlsResult", "MdcConfiguration", "ReconfigurableAccelerator",
    "ResourceEstimate", "compose", "synthesize", "NnDeployment",
    "OnnxModel", "OnnxNode", "import_onnx", "lower_to_hardware",
    "reference_mlp",
]
