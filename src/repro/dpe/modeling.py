"""The DPE facade: the three-step design flow of paper Fig. 4.

Step 1 — *Continuum modeling, simulation and analysis*: a scenario model
(the Modelio role) with functional partitioning, an attack-defence tree,
and model-based KPI estimation.

Step 2 — *Model to Implementation*: the accelerable portion of the
application ("Portioned App") becomes IR code; threat countermeasures
are synthesized from the ADT; the component-level view feeds Pillar 2.

Step 3 — *Node Level Optimisation and Deployment*: HLS/CGRA artifacts
for accelerated kernels, DSE-derived operating points, and the final
CSAR deployment specification handed to the MIRTO Cognitive Engine.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ValidationError
from repro.continuum.workload import (
    Application,
    KernelClass,
    PrivacyClass,
    Task,
    TaskRequirements,
)
from repro.dpe.adt import (
    AttackDefenceTree,
    SynthesisResult,
    countermeasure_snippets,
    synthesize_countermeasures,
)
from repro.dpe.dse import (
    GeneticExplorer,
    MappingEvaluator,
    PlatformModel,
    ProcessorModel,
    export_operating_points,
)
from repro.dpe.hls import synthesize
from repro.dpe.mlir.ir import Base2Type, Builder, F32, Module, TensorType
from repro.dpe.mlir.passes import canonicalize, quantize_to_base2
from repro.tosca.csar import CsarArchive
from repro.tosca.model import (
    NodeTemplate,
    Policy,
    Requirement,
    ServiceTemplate,
)
from repro.tosca.validator import ToscaValidator


@dataclass
class ComponentModel:
    """One functional component of the scenario (maps to a container)."""

    name: str
    megaops: float
    input_bytes: int = 0
    output_bytes: int = 0
    memory_bytes: int = 128 * 1024**2
    kernel: KernelClass = KernelClass.GENERAL
    accelerable: bool = False
    privacy: PrivacyClass = PrivacyClass.PUBLIC


@dataclass
class ScenarioModel:
    """A use-case scenario: components, dependencies, global constraints."""

    name: str
    components: list[ComponentModel] = field(default_factory=list)
    edges: list[tuple[str, str, int]] = field(default_factory=list)
    latency_budget_s: float = 1.0
    min_security_level: str = "medium"
    expected_rate_per_s: float = 1.0

    def add_component(self, component: ComponentModel) -> ComponentModel:
        if any(c.name == component.name for c in self.components):
            raise ValidationError(
                f"duplicate component {component.name!r}")
        self.components.append(component)
        return component

    def connect(self, src: str, dst: str, nbytes: int = 0) -> None:
        names = {c.name for c in self.components}
        for endpoint in (src, dst):
            if endpoint not in names:
                raise ValidationError(f"unknown component {endpoint!r}")
        self.edges.append((src, dst, nbytes))

    def to_application(self) -> Application:
        """The scheduler-facing task DAG for this scenario."""
        app = Application(self.name)
        for component in self.components:
            app.add_task(Task(
                name=component.name,
                megaops=component.megaops,
                input_bytes=component.input_bytes,
                output_bytes=component.output_bytes,
                kernel=component.kernel,
                memory_bytes=component.memory_bytes,
                requirements=TaskRequirements(
                    latency_budget_s=self.latency_budget_s,
                    privacy=component.privacy,
                    min_security_level=self.min_security_level,
                ),
            ))
        for src, dst, nbytes in self.edges:
            app.connect(src, dst, nbytes)
        return app

    def to_service_template(self) -> ServiceTemplate:
        """Step-1 output: the TOSCA topology plus policy set."""
        service = ServiceTemplate(self.name, metadata={
            "template_name": self.name, "generated_by": "dpe-modeler"})
        for component in self.components:
            node_type = ("myrtus.nodes.AcceleratedKernel"
                         if component.accelerable
                         else "myrtus.nodes.Container")
            properties = {
                "image": f"{self.name}/{component.name}:1.0",
                "cpu_millicores": max(
                    100, int(component.megaops)),
                "memory_bytes": component.memory_bytes,
                "kernel_class": component.kernel.value,
                "megaops": float(component.megaops),
                "input_bytes": component.input_bytes,
                "output_bytes": component.output_bytes,
            }
            if component.accelerable:
                properties["bitstream"] = f"{component.name}.bit"
            service.add_node(NodeTemplate(
                name=component.name, type=node_type,
                properties=properties))
        for src, dst, _nbytes in self.edges:
            service.node_templates[dst].requirements.append(
                Requirement("connection", src,
                            "tosca.relationships.ConnectsTo"))
        service.add_policy(Policy(
            "latency-budget", "myrtus.policies.Latency", ["*"],
            {"end_to_end_budget_s": self.latency_budget_s}))
        service.add_policy(Policy(
            "security-floor", "myrtus.policies.Security", ["*"],
            {"min_level": self.min_security_level}))
        for component in self.components:
            if component.privacy is not PrivacyClass.PUBLIC:
                max_layer = ("edge" if component.privacy
                             is PrivacyClass.RAW_PERSONAL else "fog")
                service.add_policy(Policy(
                    f"privacy-{component.name}",
                    "myrtus.policies.Privacy", [component.name],
                    {"data_class": component.privacy.value,
                     "max_layer": max_layer}))
        return service


#: Default DSE platform mirroring one MYRTUS edge site + fog + cloud.
#: Fog and cloud powers are grossed up by the facility PUE (cooling and
#: power-delivery overhead, ~1.3 fog / ~1.8 cloud): that is the energy
#: the continuum actually pays per remote operation, and it is what
#: creates the latency/energy trade-off the operating points span —
#: cloud is fast but expensive per op, edge is slow but frugal.
DEFAULT_PLATFORM = PlatformModel(
    name="myrtus-site",
    processors=(
        ProcessorModel("edge-mc", "cpu", gops=8.0, busy_power_w=7.0,
                       idle_power_w=2.0),
        ProcessorModel("edge-fpga", "fpga", gops=4.0, busy_power_w=9.0,
                       idle_power_w=2.5,
                       accel_kernels={KernelClass.DSP: 8.0,
                                      KernelClass.NEURAL: 6.0,
                                      KernelClass.CRYPTO: 10.0}),
        ProcessorModel("fog-fmdc", "cpu", gops=180.0,
                       busy_power_w=350.0 * 1.3,
                       idle_power_w=90.0 * 1.3,
                       accel_kernels={KernelClass.ANALYTICS: 3.0,
                                      KernelClass.NEURAL: 4.0}),
        ProcessorModel("cloud", "cpu", gops=900.0,
                       busy_power_w=700.0 * 1.8,
                       idle_power_w=180.0 * 1.8,
                       accel_kernels={KernelClass.NEURAL: 12.0,
                                      KernelClass.ANALYTICS: 6.0}),
    ),
    interconnect_latency_s=0.005,
    interconnect_bw_bps=1e9,
)


@dataclass
class KpiEstimate:
    """Step-1 model-based KPI estimation output."""

    latency_s: float
    energy_j: float
    meets_budget: bool
    bottleneck_component: str


def estimate_kpis(scenario: ScenarioModel,
                  platform: PlatformModel = DEFAULT_PLATFORM,
                  seed: int = 0) -> KpiEstimate:
    """Estimate end-to-end KPIs via a quick GA mapping exploration."""
    app = scenario.to_application()
    evaluator = MappingEvaluator(app, platform)
    explorer = GeneticExplorer(evaluator, random.Random(seed),
                               population=16, generations=10)
    results = explorer.explore()
    best = min(results, key=lambda r: r.latency_s)
    bottleneck = max(scenario.components, key=lambda c: c.megaops)
    return KpiEstimate(
        latency_s=best.latency_s,
        energy_j=best.energy_j,
        meets_budget=best.latency_s <= scenario.latency_budget_s,
        bottleneck_component=bottleneck.name,
    )


def build_kernel_ir(module: Module, component: ComponentModel) -> str:
    """Step-2: synthesize IR for an accelerable component's kernel.

    The "Portioned App" parts that require acceleration become tensor
    functions sized from the component's compute demand.
    """
    dim = max(2, min(16, int(component.megaops ** (1 / 3))))
    tensor = TensorType((dim, dim), F32)
    builder = Builder(module, f"{component.name}_kernel", [tensor, tensor])
    product = builder.op("tensor.matmul", [builder.args[0],
                                           builder.args[1]], [tensor])
    summed = builder.op("tensor.add", [product.result(), builder.args[0]],
                        [tensor])
    activated = builder.op("tensor.relu", [summed.result()], [tensor])
    builder.ret([activated.result()])
    return builder.function.name


@dataclass
class DeploymentSpecification:
    """Everything Step 3 hands to the MIRTO Cognitive Engine."""

    service: ServiceTemplate
    csar_bytes: bytes
    operating_points: list[dict]
    countermeasures: list[str]
    kpi_estimate: KpiEstimate
    artifact_inventory: dict[str, int]
    adt_result: SynthesisResult | None = None


class DesignFlow:
    """Runs the full three-step DPE pipeline on a scenario."""

    def __init__(self, platform: PlatformModel = DEFAULT_PLATFORM,
                 seed: int = 0):
        self.platform = platform
        self.seed = seed
        self.validator = ToscaValidator()

    def run(self, scenario: ScenarioModel,
            adt: AttackDefenceTree | None = None,
            defence_budget: float = 10.0) -> DeploymentSpecification:
        """Execute steps 1-3; returns the deployment specification."""
        # Step 1: modeling, threat analysis, KPI estimation.
        service = scenario.to_service_template()
        self.validator.validate(service)
        kpis = estimate_kpis(scenario, self.platform, self.seed)
        adt_result = None
        countermeasures: list[str] = []
        if adt is not None:
            adt_result = synthesize_countermeasures(adt, defence_budget)
            countermeasures = countermeasure_snippets(
                adt_result, scenario.min_security_level)
        # Step 2: model to implementation.
        module = Module(f"{scenario.name}-impl")
        kernel_functions: dict[str, str] = {}
        for component in scenario.components:
            if component.accelerable:
                kernel_functions[component.name] = build_kernel_ir(
                    module, component)
        # Step 3: node-level optimization and deployment.
        archive = CsarArchive(service)
        fixed = Base2Type(16, 8)
        for component_name, func_name in kernel_functions.items():
            canonicalize(module.function(func_name))
            fixed_fn = quantize_to_base2(module, func_name, fixed)
            hls = synthesize(module, fixed_fn.name)
            # CPU fallback of the same kernel, via the standard-compiler
            # path ("the rest of the application is compiled with
            # standard compilers").
            from repro.dpe.codegen import emit_c
            archive.add_artifact(f"src/{component_name}.c",
                                 emit_c(module, fixed_fn.name).encode())
            archive.add_artifact(f"verilog/{component_name}.v",
                                 hls.verilog.encode())
            archive.add_artifact(
                f"bitstreams/{component_name}.bit",
                _pseudo_bitstream(component_name, hls.resources.luts))
            archive.add_artifact(
                f"reports/{component_name}_hls.json",
                json.dumps({
                    "luts": hls.resources.luts,
                    "dsps": hls.resources.dsps,
                    "brams": hls.resources.brams,
                    "latency_cycles": hls.latency_cycles,
                }).encode())
        app = scenario.to_application()
        evaluator = MappingEvaluator(app, self.platform)
        explorer = GeneticExplorer(evaluator, random.Random(self.seed),
                                   population=24, generations=15,
                                   objective="edp")
        operating_points = export_operating_points(explorer.explore())
        archive.add_artifact("meta/operating-points.json",
                             json.dumps(operating_points).encode())
        if countermeasures:
            archive.add_artifact(
                "security/countermeasures.txt",
                "\n".join(countermeasures).encode())
        csar = archive.to_bytes()
        return DeploymentSpecification(
            service=service,
            csar_bytes=csar,
            operating_points=operating_points,
            countermeasures=countermeasures,
            kpi_estimate=kpis,
            artifact_inventory=archive.artifact_inventory(),
            adt_result=adt_result,
        )


def _pseudo_bitstream(name: str, luts: int) -> bytes:
    """Deterministic bitstream artifact sized by design complexity."""
    from repro.security.primitives.sha2 import sha256
    body = sha256(name.encode())
    stream = bytearray(b"XLNX")
    target = 128 + luts
    while len(stream) < target:
        body = sha256(body)
        stream += body
    return bytes(stream[:target])
