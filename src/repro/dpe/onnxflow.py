"""ONNX-style neural-network import into the IR (the [26] flow).

The paper's node-level step "already takes in DSLs ... and ML models in
ONNX format and produces CPU-FPGA implementations", with a recent flow
"from ONNX to CGRAs". This module defines a minimal ONNX-like graph
format (nodes with op_type/inputs/outputs/initializers), imports it into
the tensor dialect, and drives the full lowering: float IR -> base2
quantized IR -> per-layer CGRA configurations or an HLS accelerator,
with functional-equivalence checking at every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import (
    Base2Type,
    Builder,
    F32,
    Module,
    TensorType,
    verify_module,
)
from repro.dpe.mlir.interp import Interpreter
from repro.dpe.mlir.passes import quantization_error, quantize_to_base2

_SUPPORTED_OPS = ("Gemm", "Add", "Mul", "Relu", "Reshape")


@dataclass
class OnnxNode:
    """One operator of the ONNX-like graph."""

    op_type: str
    inputs: list[str]
    outputs: list[str]

    def __post_init__(self):
        if self.op_type not in _SUPPORTED_OPS:
            raise CompilationError(
                f"unsupported ONNX op {self.op_type!r} "
                f"(supported: {_SUPPORTED_OPS})")


@dataclass
class OnnxModel:
    """A linear ONNX-like model description."""

    name: str
    input_name: str
    input_shape: tuple[int, ...]
    output_name: str
    nodes: list[OnnxNode] = field(default_factory=list)
    initializers: dict[str, np.ndarray] = field(default_factory=dict)

    def infer_shapes(self) -> dict[str, tuple[int, ...]]:
        """Static shape inference over the node list."""
        shapes: dict[str, tuple[int, ...]] = {
            self.input_name: tuple(self.input_shape)}
        for name, array in self.initializers.items():
            shapes[name] = tuple(array.shape)
        for node in self.nodes:
            in_shapes = []
            for tensor in node.inputs:
                if tensor not in shapes:
                    raise CompilationError(
                        f"node {node.op_type}: unknown input {tensor!r}")
                in_shapes.append(shapes[tensor])
            if node.op_type == "Gemm":
                a, b = in_shapes[0], in_shapes[1]
                if a[1] != b[0]:
                    raise CompilationError(
                        f"Gemm shape mismatch {a} x {b}")
                out = (a[0], b[1])
            elif node.op_type in ("Add", "Mul"):
                if in_shapes[0] != in_shapes[1]:
                    raise CompilationError(
                        f"{node.op_type} needs equal shapes, got "
                        f"{in_shapes}")
                out = in_shapes[0]
            elif node.op_type == "Relu":
                out = in_shapes[0]
            else:  # Reshape: target shape stored as an initializer
                target = self.initializers.get(node.inputs[1])
                if target is None:
                    raise CompilationError(
                        "Reshape needs its shape as an initializer")
                out = tuple(int(d) for d in target)
            shapes[node.outputs[0]] = out
        if self.output_name not in shapes:
            raise CompilationError(
                f"model output {self.output_name!r} never produced")
        return shapes


_ONNX_TO_IR = {"Gemm": "tensor.matmul", "Add": "tensor.add",
               "Mul": "tensor.mul", "Relu": "tensor.relu"}


def import_onnx(model: OnnxModel, module: Module,
                func_name: str | None = None) -> str:
    """Import the model as a float tensor function; returns its name."""
    shapes = model.infer_shapes()
    func_name = func_name or model.name
    builder = Builder(module, func_name,
                      [TensorType(tuple(model.input_shape), F32)])
    env: dict[str, object] = {model.input_name: builder.args[0]}
    for tensor, array in model.initializers.items():
        op = builder.op("tensor.constant", [],
                        [TensorType(tuple(array.shape), F32)],
                        {"value": np.asarray(array, dtype=np.float64)})
        env[tensor] = op.result()
    for node in model.nodes:
        out_type = TensorType(shapes[node.outputs[0]], F32)
        if node.op_type == "Reshape":
            op = builder.op("tensor.reshape", [env[node.inputs[0]]],
                            [out_type])
        else:
            operands = [env[t] for t in node.inputs]
            op = builder.op(_ONNX_TO_IR[node.op_type], operands, [out_type])
        env[node.outputs[0]] = op.result()
    builder.ret([env[model.output_name]])
    verify_module(module)
    return func_name


@dataclass
class NnDeployment:
    """Result of the full ONNX-to-hardware flow."""

    float_function: str
    fixed_function: str
    quantization_error: float
    target: str  # "cgra" | "fpga"
    artifact: dict

    def meets_tolerance(self, tolerance: float) -> bool:
        return self.quantization_error <= tolerance


def lower_to_hardware(module: Module, func_name: str,
                      sample_input: np.ndarray,
                      fixed: Base2Type | None = None,
                      target: str = "fpga") -> NnDeployment:
    """Quantize and lower an imported NN function to a hardware target.

    For FPGA the artifact is the HLS result summary; for CGRA it is a
    per-op configuration (only element-wise scalar networks map today —
    matmul-bearing networks go through HLS, matching [26]'s split).
    """
    if fixed is None:
        fixed = Base2Type(16, 8)
    fixed_fn = quantize_to_base2(module, func_name, fixed)
    verify_module(module)
    error = quantization_error(module, func_name, fixed_fn.name,
                               [sample_input])
    if target == "fpga":
        from repro.dpe.hls import synthesize
        hls = synthesize(module, fixed_fn.name)
        artifact = {
            "kind": "hls",
            "verilog_lines": len(hls.verilog.splitlines()),
            "luts": hls.resources.luts,
            "dsps": hls.resources.dsps,
            "brams": hls.resources.brams,
            "latency_cycles": hls.latency_cycles,
            "throughput_per_s": hls.throughput_per_s(),
        }
    elif target == "cgra":
        from repro.dpe.mlir.cgra import CgraModel, map_function
        config = map_function(module, fixed_fn.name,
                              CgraModel(4, 4, ("alu", "mul", "const")))
        artifact = {
            "kind": "cgra",
            "pes_used": config.utilized_pes,
            "total_cycles": config.total_cycles,
            "latency_s": config.latency_s(),
        }
    else:
        raise CompilationError(f"unknown target {target!r}")
    return NnDeployment(
        float_function=func_name,
        fixed_function=fixed_fn.name,
        quantization_error=error,
        target=target,
        artifact=artifact,
    )


def reference_mlp(rng: np.random.Generator, input_dim: int = 8,
                  hidden: int = 16, output_dim: int = 4) -> OnnxModel:
    """A small random MLP used by examples and benchmarks."""
    w1 = rng.normal(0, 0.5, (input_dim, hidden))
    b1 = rng.normal(0, 0.1, (1, hidden))
    w2 = rng.normal(0, 0.5, (hidden, output_dim))
    b2 = rng.normal(0, 0.1, (1, output_dim))
    return OnnxModel(
        name="mlp",
        input_name="x",
        input_shape=(1, input_dim),
        output_name="y",
        nodes=[
            OnnxNode("Gemm", ["x", "w1"], ["h1"]),
            OnnxNode("Add", ["h1", "b1"], ["h2"]),
            OnnxNode("Relu", ["h2"], ["h3"]),
            OnnxNode("Gemm", ["h3", "w2"], ["h4"]),
            OnnxNode("Add", ["h4", "b2"], ["y"]),
        ],
        initializers={"w1": w1, "b1": b1, "w2": w2, "b2": b2},
    )
