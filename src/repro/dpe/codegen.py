"""C code generation: the standard-compiler path of the DPE (Fig. 4).

"The rest of the application is compiled with standard compilers,
ensuring it can interoperate with the accelerated portions" (paper
Sec. V). This backend lowers IR functions to portable C99 — scalar arith
ops to doubles, tensor ops to loops over flattened static-shape arrays,
base2 fixed-point ops to ``int64_t`` shift arithmetic — and, when a C
compiler is available, compiles and runs the result to check functional
equivalence against the reference interpreter (the same correctness
spine the HLS/CGRA lowerings use).
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import (
    Base2Type,
    Function,
    Module,
    Operation,
    ScalarType,
    TensorType,
    Value,
)


def _c_type(type_) -> str:
    if isinstance(type_, ScalarType):
        return "int64_t" if type_.is_integer else "double"
    if isinstance(type_, Base2Type):
        return "int64_t"
    if isinstance(type_, TensorType):
        return _c_type(type_.element)
    raise CompilationError(f"codegen: unsupported type {type_}")


def _is_tensor(type_) -> bool:
    return isinstance(type_, TensorType)


def _elems(type_) -> int:
    return type_.num_elements if _is_tensor(type_) else 1


class CEmitter:
    """Emits one IR function as a C function.

    Tensor values become fixed-size local arrays; the generated function
    takes ``const T* argN`` input pointers and ``T* outN`` output
    pointers so a host harness can drive it.
    """

    def __init__(self, function: Function):
        self.function = function
        self.lines: list[str] = []
        self._names: dict[int, str] = {}

    def _name(self, value: Value) -> str:
        if id(value) not in self._names:
            self._names[id(value)] = f"v{len(self._names)}"
        return self._names[id(value)]

    def emit(self) -> str:
        f = self.function
        params = []
        for i, arg in enumerate(f.arguments):
            params.append(f"const {_c_type(arg.type)}* arg{i}")
        for i, ret in enumerate(f.returns):
            params.append(f"{_c_type(ret.type)}* out{i}")
        self.lines = [f"void {f.name}({', '.join(params)}) {{"]
        for i, arg in enumerate(f.arguments):
            name = self._name(arg)
            ctype = _c_type(arg.type)
            n = _elems(arg.type)
            self.lines.append(f"  {ctype} {name}[{n}];")
            self.lines.append(
                f"  for (int i = 0; i < {n}; i++) "
                f"{name}[i] = arg{i}[i];")
        for op in f.ops:
            self._emit_op(op)
        for i, ret in enumerate(f.returns):
            n = _elems(ret.type)
            self.lines.append(
                f"  for (int i = 0; i < {n}; i++) "
                f"out{i}[i] = {self._name(ret)}[i];")
        self.lines.append("}")
        return "\n".join(self.lines)

    # -- per-op emission ------------------------------------------------------

    def _declare(self, value: Value) -> str:
        name = self._name(value)
        self.lines.append(
            f"  {_c_type(value.type)} {name}[{_elems(value.type)}];")
        return name

    def _emit_op(self, op: Operation) -> None:
        handler = getattr(self, "_op_" + op.name.replace(".", "_"), None)
        if handler is None:
            raise CompilationError(f"codegen: unsupported op {op.name}")
        handler(op)

    def _emit_elementwise(self, op: Operation, expr: str) -> None:
        out = self._declare(op.results[0])
        names = [self._name(v) for v in op.operands]
        n = _elems(op.results[0].type)
        body = expr.format(*(f"{name}[i]" for name in names))
        self.lines.append(
            f"  for (int i = 0; i < {n}; i++) {out}[i] = {body};")

    def _op_arith_constant(self, op):
        out = self._declare(op.results[0])
        value = op.attributes["value"]
        if isinstance(value, bool):
            literal = "1" if value else "0"
        elif isinstance(value, int):
            literal = f"INT64_C({value})"
        else:
            literal = repr(float(value))
        self.lines.append(f"  {out}[0] = {literal};")

    def _op_tensor_constant(self, op):
        out = self._declare(op.results[0])
        array = np.asarray(op.attributes["value"],
                           dtype=np.float64).ravel()
        chunks = ", ".join(repr(float(x)) for x in array)
        ctype = _c_type(op.results[0].type)
        self.lines.append(
            f"  static const {ctype} {out}_init[{len(array)}] = "
            f"{{{chunks}}};")
        self.lines.append(
            f"  for (int i = 0; i < {len(array)}; i++) "
            f"{out}[i] = {out}_init[i];")

    # scalar/elementwise arithmetic ------------------------------------------------

    def _op_arith_addf(self, op):
        self._emit_elementwise(op, "{0} + {1}")

    _op_arith_addi = _op_arith_addf

    def _op_arith_subf(self, op):
        self._emit_elementwise(op, "{0} - {1}")

    _op_arith_subi = _op_arith_subf

    def _op_arith_mulf(self, op):
        self._emit_elementwise(op, "{0} * {1}")

    _op_arith_muli = _op_arith_mulf

    def _op_arith_divf(self, op):
        self._emit_elementwise(op, "{0} / {1}")

    def _op_arith_maxf(self, op):
        self._emit_elementwise(op, "({0} > {1}) ? {0} : {1}")

    def _op_arith_minf(self, op):
        self._emit_elementwise(op, "({0} < {1}) ? {0} : {1}")

    def _op_arith_cmp(self, op):
        cmp = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
               "gt": ">", "ge": ">="}[op.attributes["predicate"]]
        self._emit_elementwise(op, f"({{0}} {cmp} {{1}}) ? 1 : 0")

    def _op_arith_select(self, op):
        self._emit_elementwise(op, "{0} ? {1} : {2}")

    def _op_tensor_add(self, op):
        self._emit_elementwise(op, "{0} + {1}")

    def _op_tensor_mul(self, op):
        self._emit_elementwise(op, "{0} * {1}")

    def _op_tensor_relu(self, op):
        self._emit_elementwise(op, "({0} > 0.0) ? {0} : 0.0")

    def _op_tensor_reshape(self, op):
        self._emit_elementwise(op, "{0}")

    def _op_tensor_matmul(self, op):
        out = self._declare(op.results[0])
        a, b = (self._name(v) for v in op.operands)
        (m, k) = op.operands[0].type.shape
        n = op.operands[1].type.shape[1]
        self.lines += [
            f"  for (int r = 0; r < {m}; r++)",
            f"    for (int c = 0; c < {n}; c++) {{",
            f"      double acc = 0.0;",
            f"      for (int t = 0; t < {k}; t++)",
            f"        acc += {a}[r * {k} + t] * {b}[t * {n} + c];",
            f"      {out}[r * {n} + c] = acc;",
            f"    }}",
        ]

    # base2 fixed point ---------------------------------------------------------------

    @staticmethod
    def _fx(type_) -> Base2Type:
        element = type_.element if _is_tensor(type_) else type_
        if not isinstance(element, Base2Type):
            raise CompilationError("expected a base2 type")
        return element

    def _clamp(self, fx: Base2Type, expr: str) -> str:
        lo = round(fx.min_value / fx.scale)
        hi = round(fx.max_value / fx.scale)
        return (f"(({expr}) < INT64_C({lo}) ? INT64_C({lo}) : "
                f"(({expr}) > INT64_C({hi}) ? INT64_C({hi}) : ({expr})))")

    def _op_base2_quantize(self, op):
        fx = self._fx(op.results[0].type)
        out = self._declare(op.results[0])
        src = self._name(op.operands[0])
        n = _elems(op.results[0].type)
        raw = f"(int64_t)llround({src}[i] / {fx.scale!r})"
        self.lines.append(
            f"  for (int i = 0; i < {n}; i++) "
            f"{out}[i] = {self._clamp(fx, raw)};")

    def _op_base2_dequantize(self, op):
        fx = self._fx(op.operands[0].type)
        out = self._declare(op.results[0])
        src = self._name(op.operands[0])
        n = _elems(op.results[0].type)
        self.lines.append(
            f"  for (int i = 0; i < {n}; i++) "
            f"{out}[i] = (double){src}[i] * {fx.scale!r};")

    def _op_base2_add(self, op):
        fx = self._fx(op.results[0].type)
        out = self._declare(op.results[0])
        a, b = (self._name(v) for v in op.operands)
        n = _elems(op.results[0].type)
        self.lines.append(
            f"  for (int i = 0; i < {n}; i++) "
            f"{out}[i] = {self._clamp(fx, f'{a}[i] + {b}[i]')};")

    def _op_base2_mul(self, op):
        fx = self._fx(op.results[0].type)
        in_fx = self._fx(op.operands[0].type)
        out = self._declare(op.results[0])
        a, b = (self._name(v) for v in op.operands)
        n = _elems(op.results[0].type)
        expr = f"({a}[i] * {b}[i]) >> {in_fx.frac}"
        self.lines.append(
            f"  for (int i = 0; i < {n}; i++) "
            f"{out}[i] = {self._clamp(fx, expr)};")

    def _op_base2_relu(self, op):
        self._emit_elementwise(op, "({0} > 0) ? {0} : 0")

    def _op_base2_matmul(self, op):
        fx = self._fx(op.results[0].type)
        in_fx = self._fx(op.operands[0].type)
        out = self._declare(op.results[0])
        a, b = (self._name(v) for v in op.operands)
        (m, k) = op.operands[0].type.shape
        n = op.operands[1].type.shape[1]
        acc_expr = self._clamp(fx, f"acc >> {in_fx.frac}")
        self.lines += [
            f"  for (int r = 0; r < {m}; r++)",
            f"    for (int c = 0; c < {n}; c++) {{",
            f"      int64_t acc = 0;",
            f"      for (int t = 0; t < {k}; t++)",
            f"        acc += {a}[r * {k} + t] * {b}[t * {n} + c];",
            f"      {out}[r * {n} + c] = {acc_expr};",
            f"    }}",
        ]


def emit_c(module: Module, func_name: str) -> str:
    """Emit a self-contained C translation unit for one function."""
    function = module.function(func_name)
    body = CEmitter(function).emit()
    return "\n".join([
        "/* Generated by myrtus-repro DPE C backend */",
        "#include <stdint.h>",
        "#include <math.h>",
        "",
        body,
        "",
    ])


def _emit_harness(function: Function, inputs: list[np.ndarray]) -> str:
    """main() that feeds fixed inputs and prints outputs."""
    lines = ["#include <stdio.h>", "", "int main(void) {"]
    arg_names = []
    for i, (arg, data) in enumerate(zip(function.arguments, inputs)):
        ctype = _c_type(arg.type)
        flat = np.asarray(data).ravel()
        if ctype == "double":
            chunks = ", ".join(repr(float(x)) for x in flat)
        else:
            chunks = ", ".join(f"INT64_C({int(x)})" for x in flat)
        lines.append(f"  {ctype} in{i}[{len(flat)}] = {{{chunks}}};")
        arg_names.append(f"in{i}")
    out_names = []
    for i, ret in enumerate(function.returns):
        lines.append(f"  {_c_type(ret.type)} res{i}[{_elems(ret.type)}];")
        out_names.append(f"res{i}")
    lines.append(
        f"  {function.name}({', '.join(arg_names + out_names)});")
    for i, ret in enumerate(function.returns):
        fmt = "%.17g" if _c_type(ret.type) == "double" else "%lld"
        cast = "" if _c_type(ret.type) == "double" else "(long long)"
        lines.append(
            f"  for (int i = 0; i < {_elems(ret.type)}; i++) "
            f'printf("{fmt}\\n", {cast}res{i}[i]);')
    lines += ["  return 0;", "}"]
    return "\n".join(lines)


def compiler_available() -> bool:
    """True when a C compiler is on PATH."""
    return shutil.which("cc") is not None or \
        shutil.which("gcc") is not None


def compile_and_run(module: Module, func_name: str,
                    inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Compile the generated C with the system compiler and execute it.

    Returns one flat float/int array per function result. Raises
    :class:`CompilationError` when no compiler exists or it fails.
    """
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        raise CompilationError("no C compiler available on PATH")
    function = module.function(func_name)
    source = emit_c(module, func_name) + _emit_harness(function, inputs)
    with tempfile.TemporaryDirectory() as tmp:
        c_path = Path(tmp) / "kernel.c"
        bin_path = Path(tmp) / "kernel"
        c_path.write_text(source)
        compile_result = subprocess.run(
            [compiler, "-O2", "-std=c99", str(c_path), "-lm",
             "-o", str(bin_path)],
            capture_output=True, text=True)
        if compile_result.returncode != 0:
            raise CompilationError(
                f"C compilation failed: {compile_result.stderr}")
        run_result = subprocess.run([str(bin_path)], capture_output=True,
                                    text=True)
        if run_result.returncode != 0:
            raise CompilationError(
                f"generated binary failed: {run_result.stderr}")
    values = [float(line) for line in run_result.stdout.split()]
    outputs = []
    cursor = 0
    for ret in function.returns:
        n = _elems(ret.type)
        chunk = np.asarray(values[cursor:cursor + n])
        if _is_tensor(ret.type):
            chunk = chunk.reshape(ret.type.shape)
        outputs.append(chunk)
        cursor += n
    return outputs
