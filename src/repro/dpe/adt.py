"""Attack-Defence Trees and countermeasure synthesis (paper Sec. V).

The DPE's modeling step lets the user "model the Attack Defence Tree
(ADT) for the analysis of the threats to which the system is exposed
and synthesize a set of adapted counter-measures". An ADT is a tree of
attack goals (AND/OR-refined) whose leaves carry probability and cost;
defence nodes attach to attack nodes and reduce their success
probability. Synthesis picks, within a budget, the defence subset that
minimizes the root attack probability, then maps each chosen defence to
a concrete primitive from the security library (Table II).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import ValidationError


class Refinement(str, Enum):
    AND = "and"  # attack succeeds only if all children succeed
    OR = "or"  # attack succeeds if any child succeeds
    LEAF = "leaf"


@dataclass
class Defence:
    """A countermeasure attached to an attack node."""

    name: str
    mitigation: float  # multiplies the attack probability (0..1)
    cost: float
    primitive: str  # library primitive implementing it

    def __post_init__(self):
        if not 0 <= self.mitigation <= 1:
            raise ValidationError(
                f"defence {self.name}: mitigation must be in [0, 1]")
        if self.cost < 0:
            raise ValidationError(f"defence {self.name}: negative cost")


@dataclass
class AttackNode:
    """One node of the attack tree."""

    name: str
    refinement: Refinement = Refinement.LEAF
    probability: float = 0.0  # leaves only
    attack_cost: float = 0.0
    children: list["AttackNode"] = field(default_factory=list)
    defences: list[Defence] = field(default_factory=list)

    def __post_init__(self):
        if self.refinement is Refinement.LEAF and not 0 <= self.probability <= 1:
            raise ValidationError(
                f"attack {self.name}: probability must be in [0, 1]")

    def add_child(self, child: "AttackNode") -> "AttackNode":
        if self.refinement is Refinement.LEAF:
            raise ValidationError(
                f"attack {self.name}: leaves cannot have children")
        self.children.append(child)
        return child

    def add_defence(self, defence: Defence) -> Defence:
        self.defences.append(defence)
        return defence


# The customizable primitive library (paper: "a library of customizable
# primitives") mapping defence categories to Table II mechanisms.
COUNTERMEASURE_LIBRARY: dict[str, dict[str, str]] = {
    "encrypt-channel": {
        "low": "ASCON-128 channel encryption",
        "medium": "AES-128 channel encryption",
        "high": "AES-256 channel encryption",
    },
    "authenticate-peer": {
        "low": "ECDSA peer signatures",
        "medium": "RSA peer signatures",
        "high": "Dilithium-style peer signatures",
    },
    "integrity-check": {
        "low": "ASCON-Hash integrity tags",
        "medium": "SHA-256 integrity tags",
        "high": "SHA-512 integrity tags",
    },
    "access-control": {
        "low": "token authentication",
        "medium": "token authentication + RBAC",
        "high": "token authentication + RBAC + revocation",
    },
    "isolation": {
        "low": "container namespaces",
        "medium": "dedicated node placement",
        "high": "dedicated secure-level node placement",
    },
}


class AttackDefenceTree:
    """The full ADT rooted at a single attack goal."""

    def __init__(self, root: AttackNode):
        self.root = root

    def nodes(self) -> list[AttackNode]:
        """All nodes in pre-order."""
        result: list[AttackNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(node.children))
        return result

    def all_defences(self) -> list[tuple[AttackNode, Defence]]:
        return [(node, defence) for node in self.nodes()
                for defence in node.defences]

    def success_probability(self,
                            enabled: set[str] | None = None) -> float:
        """Root attack success probability given enabled defences."""
        enabled = enabled if enabled is not None else set()
        return self._prob(self.root, enabled)

    def _prob(self, node: AttackNode, enabled: set[str]) -> float:
        if node.refinement is Refinement.LEAF:
            p = node.probability
        elif node.refinement is Refinement.AND:
            p = 1.0
            for child in node.children:
                p *= self._prob(child, enabled)
        else:  # OR
            p = 1.0
            for child in node.children:
                p *= 1.0 - self._prob(child, enabled)
            p = 1.0 - p
        for defence in node.defences:
            if defence.name in enabled:
                p *= defence.mitigation
        return p

    def attack_cost(self) -> float:
        """Cheapest attack cost to reach the root goal."""
        return self._cost(self.root)

    def _cost(self, node: AttackNode) -> float:
        if node.refinement is Refinement.LEAF:
            return node.attack_cost
        child_costs = [self._cost(c) for c in node.children]
        if node.refinement is Refinement.AND:
            return node.attack_cost + sum(child_costs)
        return node.attack_cost + (min(child_costs) if child_costs else 0.0)


@dataclass
class SynthesisResult:
    """Outcome of countermeasure synthesis."""

    selected: list[Defence]
    residual_probability: float
    baseline_probability: float
    total_cost: float

    @property
    def risk_reduction(self) -> float:
        if self.baseline_probability == 0:
            return 0.0
        return 1.0 - self.residual_probability / self.baseline_probability


def synthesize_countermeasures(tree: AttackDefenceTree,
                               budget: float) -> SynthesisResult:
    """Pick the defence subset minimizing root probability within budget.

    Exact subset search for small trees (the realistic ADT size here);
    ties break towards cheaper selections.
    """
    defences = [d for _, d in tree.all_defences()]
    if len(defences) > 16:
        raise ValidationError(
            "exact synthesis supports at most 16 defences; "
            "split the tree")
    baseline = tree.success_probability(set())
    best: tuple[float, float, tuple[Defence, ...]] = (baseline, 0.0, ())
    for r in range(1, len(defences) + 1):
        for combo in itertools.combinations(defences, r):
            cost = sum(d.cost for d in combo)
            if cost > budget:
                continue
            prob = tree.success_probability({d.name for d in combo})
            if (prob, cost) < (best[0], best[1]):
                best = (prob, cost, combo)
    return SynthesisResult(
        selected=list(best[2]),
        residual_probability=best[0],
        baseline_probability=baseline,
        total_cost=best[1],
    )


def countermeasure_snippets(result: SynthesisResult,
                            security_level: str) -> list[str]:
    """Resolve each selected defence to a concrete primitive description
    at the deployment's security level (the 'Threat Counter Measures'
    artifact of Fig. 4)."""
    snippets = []
    for defence in result.selected:
        library_entry = COUNTERMEASURE_LIBRARY.get(defence.primitive)
        if library_entry is None:
            raise ValidationError(
                f"defence {defence.name}: unknown primitive "
                f"{defence.primitive!r}")
        snippets.append(
            f"{defence.name}: {library_entry[security_level]}")
    return snippets
