"""Reference interpreter for the IR.

Gives every dialect executable semantics so each compilation stage can
be checked for functional equivalence against its input — the DPE's
correctness story for "turning applications into executable
implementations". Tensors are numpy arrays; base2 values are integers
(raw fixed-point representations) carried alongside their types.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import Base2Type, Function, Module, TensorType, Value


def _elem_base2(type_) -> Base2Type | None:
    if isinstance(type_, Base2Type):
        return type_
    if isinstance(type_, TensorType) and isinstance(type_.element, Base2Type):
        return type_.element
    return None


class Interpreter:
    """Executes single-block functions op by op."""

    def __init__(self, module: Module):
        self.module = module

    def run(self, func_name: str, *args: Any) -> list[Any]:
        """Execute *func_name* on concrete inputs; returns result list."""
        function = self.module.function(func_name)
        if len(args) != len(function.arguments):
            raise CompilationError(
                f"{func_name} expects {len(function.arguments)} args, "
                f"got {len(args)}")
        env: dict[int, Any] = {}
        for formal, actual in zip(function.arguments, args):
            env[id(formal)] = actual
        for op in function.ops:
            inputs = [env[id(v)] for v in op.operands]
            outputs = self._execute(op, inputs)
            for value, result in zip(op.results, outputs):
                env[id(value)] = result
        return [env[id(r)] for r in function.returns]

    # -- op semantics --------------------------------------------------------------

    def _execute(self, op, inputs: list[Any]) -> list[Any]:
        name = op.name
        handler = getattr(self, "_op_" + name.replace(".", "_"), None)
        if handler is None:
            raise CompilationError(f"interpreter: unsupported op {name}")
        return handler(op, inputs)

    # arith ------------------------------------------------------------------

    def _op_arith_constant(self, op, inputs):
        return [op.attributes["value"]]

    def _op_arith_addi(self, op, inputs):
        return [inputs[0] + inputs[1]]

    _op_arith_addf = _op_arith_addi

    def _op_arith_subi(self, op, inputs):
        return [inputs[0] - inputs[1]]

    _op_arith_subf = _op_arith_subi

    def _op_arith_muli(self, op, inputs):
        return [inputs[0] * inputs[1]]

    _op_arith_mulf = _op_arith_muli

    def _op_arith_divf(self, op, inputs):
        return [inputs[0] / inputs[1]]

    def _op_arith_maxf(self, op, inputs):
        return [max(inputs[0], inputs[1])]

    def _op_arith_minf(self, op, inputs):
        return [min(inputs[0], inputs[1])]

    def _op_arith_cmp(self, op, inputs):
        predicate = op.attributes["predicate"]
        a, b = inputs
        result = {
            "eq": a == b, "ne": a != b, "lt": a < b,
            "le": a <= b, "gt": a > b, "ge": a >= b,
        }[predicate]
        return [bool(result)]

    def _op_arith_select(self, op, inputs):
        return [inputs[1] if inputs[0] else inputs[2]]

    # tensor ------------------------------------------------------------------

    def _op_tensor_constant(self, op, inputs):
        return [np.asarray(op.attributes["value"], dtype=np.float64)]

    def _op_tensor_matmul(self, op, inputs):
        return [np.asarray(inputs[0]) @ np.asarray(inputs[1])]

    def _op_tensor_add(self, op, inputs):
        return [np.asarray(inputs[0]) + np.asarray(inputs[1])]

    def _op_tensor_mul(self, op, inputs):
        return [np.asarray(inputs[0]) * np.asarray(inputs[1])]

    def _op_tensor_relu(self, op, inputs):
        return [np.maximum(np.asarray(inputs[0]), 0.0)]

    def _op_tensor_reshape(self, op, inputs):
        return [np.asarray(inputs[0]).reshape(op.results[0].type.shape)]

    # base2 (fixed point): raw integer representations ------------------------------

    def _op_base2_quantize(self, op, inputs):
        fx = _elem_base2(op.results[0].type)
        value = np.asarray(inputs[0], dtype=np.float64)
        lo = round(fx.min_value / fx.scale)
        hi = round(fx.max_value / fx.scale)
        raw = np.clip(np.round(value / fx.scale), lo, hi).astype(np.int64)
        return [raw if raw.ndim else int(raw)]

    def _op_base2_dequantize(self, op, inputs):
        fx = _elem_base2(op.operands[0].type)
        return [np.asarray(inputs[0], dtype=np.float64) * fx.scale]

    def _op_base2_add(self, op, inputs):
        fx = _elem_base2(op.results[0].type)
        raw = np.asarray(inputs[0], dtype=np.int64) \
            + np.asarray(inputs[1], dtype=np.int64)
        return [self._saturate(raw, fx)]

    def _op_base2_mul(self, op, inputs):
        fx = _elem_base2(op.results[0].type)
        wide = np.asarray(inputs[0], dtype=np.int64) \
            * np.asarray(inputs[1], dtype=np.int64)
        # Product has 2*frac fractional bits: shift back.
        in_fx = _elem_base2(op.operands[0].type)
        raw = wide >> in_fx.frac
        return [self._saturate(raw, fx)]

    def _op_base2_matmul(self, op, inputs):
        fx = _elem_base2(op.results[0].type)
        in_fx = _elem_base2(op.operands[0].type)
        wide = np.asarray(inputs[0], dtype=np.int64) \
            @ np.asarray(inputs[1], dtype=np.int64)
        raw = wide >> in_fx.frac
        return [self._saturate(raw, fx)]

    def _op_base2_relu(self, op, inputs):
        return [np.maximum(np.asarray(inputs[0], dtype=np.int64), 0)]

    @staticmethod
    def _saturate(raw: np.ndarray, fx: Base2Type) -> np.ndarray:
        lo = round(fx.min_value / fx.scale)
        hi = round(fx.max_value / fx.scale)
        return np.clip(raw, lo, hi)

    # cgra: a config op evaluates its embedded schedule functionally ------------------

    def _op_cgra_config(self, op, inputs):
        raise CompilationError(
            "cgra.config is a configuration artifact, not executable here; "
            "use repro.dpe.mlir.cgra.CgraMachine"
        )
