"""Rewrite passes: constant folding, CSE, DCE, and base2 quantization.

The quantization pass implements the "NumPy-like expressions with support
for custom data types using the base2 dialect" direction of the paper: a
float tensor function is rewritten into fixed-point arithmetic with
quantize/dequantize at the boundary, preserving the function interface.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import (
    Base2Type,
    Function,
    Module,
    Operation,
    ScalarType,
    TensorType,
    Value,
)
from repro.dpe.mlir.interp import Interpreter

_FOLDABLE = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.maxf": max,
    "arith.minf": min,
}


def fold_constants(function: Function) -> int:
    """Evaluate ops whose operands are all arith.constants.

    Returns the number of ops folded. Folded ops become constants; DCE
    removes the now-dead originals' operands.
    """
    folded = 0
    const_values: dict[int, Any] = {}
    for op in function.ops:
        if op.name == "arith.constant":
            const_values[id(op.results[0])] = op.attributes["value"]
    for op in list(function.ops):
        fn = _FOLDABLE.get(op.name)
        if fn is None:
            continue
        if all(id(v) in const_values for v in op.operands):
            value = fn(*(const_values[id(v)] for v in op.operands))
            op.name = "arith.constant"
            op.operands = []
            op.attributes = {"value": value}
            const_values[id(op.results[0])] = value
            folded += 1
    return folded


def eliminate_common_subexpressions(function: Function) -> int:
    """Merge structurally identical pure ops; returns ops removed."""
    seen: dict[tuple, Value] = {}
    replacements: dict[int, Value] = {}
    kept: list[Operation] = []
    removed = 0
    for op in function.ops:
        operands = [replacements.get(id(v), v) for v in op.operands]
        op.operands = operands
        key = (
            op.name,
            tuple(id(v) for v in operands),
            tuple(sorted(
                (k, _hashable(v)) for k, v in op.attributes.items())),
        )
        if len(op.results) == 1 and key in seen:
            replacements[id(op.results[0])] = seen[key]
            removed += 1
            continue
        if len(op.results) == 1:
            seen[key] = op.results[0]
        kept.append(op)
    function.ops = kept
    function.returns = [replacements.get(id(v), v)
                        for v in function.returns]
    return removed


def _hashable(value: Any):
    if isinstance(value, np.ndarray):
        return (value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def eliminate_dead_code(function: Function) -> int:
    """Drop ops whose results are never used; returns ops removed."""
    live: set[int] = {id(v) for v in function.returns}
    kept_reversed: list[Operation] = []
    removed = 0
    for op in reversed(function.ops):
        if any(id(r) in live for r in op.results) or op.name.startswith("dfg."):
            kept_reversed.append(op)
            for operand in op.operands:
                live.add(id(operand))
        else:
            removed += 1
    function.ops = list(reversed(kept_reversed))
    return removed


def simplify_algebraic(function: Function) -> int:
    """Peephole identities: x*1, x+0, x-0, x/1, min/max(x,x), relu∘relu.

    Returns the number of rewrites. Identities are applied by replacing
    every use of the op's result with the surviving operand; DCE then
    removes the orphaned op.
    """
    const_values: dict[int, Any] = {}
    for op in function.ops:
        if op.name in ("arith.constant", "tensor.constant"):
            const_values[id(op.results[0])] = op.attributes["value"]

    def is_const(value: Value, expected: float) -> bool:
        raw = const_values.get(id(value))
        if raw is None:
            return False
        if isinstance(raw, np.ndarray):
            return bool(np.all(raw == expected))
        return raw == expected

    replacements: dict[int, Value] = {}
    rewrites = 0
    for op in function.ops:
        op.operands = [replacements.get(id(v), v) for v in op.operands]
        survivor: Value | None = None
        if op.name in ("arith.mulf", "arith.muli", "tensor.mul"):
            lhs, rhs = op.operands
            if is_const(rhs, 1.0):
                survivor = lhs
            elif is_const(lhs, 1.0):
                survivor = rhs
        elif op.name in ("arith.addf", "arith.addi", "tensor.add"):
            lhs, rhs = op.operands
            if is_const(rhs, 0.0):
                survivor = lhs
            elif is_const(lhs, 0.0):
                survivor = rhs
        elif op.name in ("arith.subf", "arith.subi"):
            if is_const(op.operands[1], 0.0):
                survivor = op.operands[0]
        elif op.name == "arith.divf":
            if is_const(op.operands[1], 1.0):
                survivor = op.operands[0]
        elif op.name in ("arith.maxf", "arith.minf"):
            if op.operands[0] is op.operands[1]:
                survivor = op.operands[0]
        elif op.name in ("tensor.relu", "base2.relu"):
            producer = op.operands[0].producer
            if producer is not None and producer.name == op.name:
                survivor = op.operands[0]  # relu is idempotent
        if survivor is not None and survivor.type == op.results[0].type:
            replacements[id(op.results[0])] = survivor
            rewrites += 1
    if replacements:
        for op in function.ops:
            op.operands = [replacements.get(id(v), v)
                           for v in op.operands]
        function.returns = [replacements.get(id(v), v)
                            for v in function.returns]
    return rewrites


def statically_check(function: Function) -> None:
    """Run the dataflow analyses; raise when the function is broken.

    Every pass calls this on its output, so a rewrite that produces a
    use-before-def or a type inconsistency fails immediately at the
    stage that introduced it instead of surfacing as a wrong number in
    the interpreter (or not at all).
    """
    from repro.analysis.mlir import check_function

    problems = check_function(function)
    if problems:
        raise CompilationError(
            f"pass output failed static checks: " + "; ".join(problems))


def canonicalize(function: Function) -> dict[str, int]:
    """Fold + simplify + CSE + DCE to a fixed point; returns counts."""
    totals = {"folded": 0, "simplified": 0, "cse": 0, "dce": 0}
    for _ in range(20):
        folded = fold_constants(function)
        simplified = simplify_algebraic(function)
        cse = eliminate_common_subexpressions(function)
        dce = eliminate_dead_code(function)
        totals["folded"] += folded
        totals["simplified"] += simplified
        totals["cse"] += cse
        totals["dce"] += dce
        if folded == simplified == cse == dce == 0:
            break
    statically_check(function)
    return totals


# -- quantization to base2 ----------------------------------------------------------

_TENSOR_TO_BASE2 = {
    "tensor.matmul": "base2.matmul",
    "tensor.add": "base2.add",
    "tensor.mul": "base2.mul",
    "tensor.relu": "base2.relu",
}


def quantize_to_base2(module: Module, func_name: str,
                      fixed: Base2Type,
                      new_name: str | None = None) -> Function:
    """Create a fixed-point twin of a float tensor function.

    The new function keeps the float interface: inputs are quantized on
    entry, arithmetic runs in base2, results dequantize on exit — the
    standard deployment shape for FPGA/CGRA inference.
    """
    source = module.function(func_name)
    new_name = new_name or f"{func_name}_base2"
    mapping: dict[int, Value] = {}
    target = Function(
        name=new_name,
        arguments=[Value(a.type, a.name) for a in source.arguments],
    )
    counter = [0]

    def fresh(type_) -> Value:
        counter[0] += 1
        return Value(type_, f"q{counter[0]}")

    def fixed_type_of(float_type):
        if isinstance(float_type, TensorType):
            return TensorType(float_type.shape, fixed)
        return fixed

    def emit(name, operands, result_type, attributes=None) -> Value:
        operation = Operation(
            name=name, operands=list(operands),
            attributes=dict(attributes or {}),
            results=[fresh(result_type)])
        operation.results[0].producer = operation
        target.ops.append(operation)
        return operation.results[0]

    # Quantize arguments (the target function's own argument values).
    for src_arg, dst_arg in zip(source.arguments, target.arguments):
        mapping[id(src_arg)] = emit("base2.quantize", [dst_arg],
                                    fixed_type_of(src_arg.type))
    # Translate the body.
    for op in source.ops:
        if op.name == "tensor.constant":
            raw = emit("tensor.constant", [], op.results[0].type,
                       op.attributes)
            mapping[id(op.results[0])] = emit(
                "base2.quantize", [raw],
                fixed_type_of(op.results[0].type))
        elif op.name in _TENSOR_TO_BASE2:
            operands = [mapping[id(v)] for v in op.operands]
            mapping[id(op.results[0])] = emit(
                _TENSOR_TO_BASE2[op.name], operands,
                fixed_type_of(op.results[0].type))
        else:
            raise CompilationError(
                f"quantize_to_base2: unsupported op {op.name}")
    # Dequantize results.
    returns = []
    for ret in source.returns:
        returns.append(emit("base2.dequantize", [mapping[id(ret)]],
                            ret.type))
    target.returns = returns
    module.add(target)
    statically_check(target)
    return target


def quantization_error(module: Module, float_func: str, fixed_func: str,
                       inputs: list[np.ndarray]) -> float:
    """Max absolute difference between float and base2 versions."""
    interp = Interpreter(module)
    ref = interp.run(float_func, *inputs)
    approx = interp.run(fixed_func, *inputs)
    worst = 0.0
    for r, a in zip(ref, approx):
        worst = max(worst, float(np.max(np.abs(
            np.asarray(r, dtype=np.float64)
            - np.asarray(a, dtype=np.float64)))))
    return worst
