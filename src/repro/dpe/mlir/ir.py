"""A compact multi-dialect SSA IR, in the spirit of MLIR.

The DPE's node-level optimization step builds "a common interoperability
framework based on MLIR" (paper Sec. V) with dialects for dataflow
(dfg-mlir), binary numeral types (base2) and CGRAs (cgra-mlir). This
module provides the IR core those dialects plug into: types, SSA values,
operations with attributes, functions, modules, a builder, and a
verifier enforcing SSA dominance and per-op type rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import CompilationError


# -- types -----------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarType:
    """A scalar: i32, i64, f32, f64 or i1."""

    name: str  # "i1" | "i32" | "i64" | "f32" | "f64"

    def __str__(self) -> str:
        return self.name

    @property
    def is_float(self) -> bool:
        return self.name.startswith("f")

    @property
    def is_integer(self) -> bool:
        return self.name.startswith("i")


I1 = ScalarType("i1")
I32 = ScalarType("i32")
I64 = ScalarType("i64")
F32 = ScalarType("f32")
F64 = ScalarType("f64")


@dataclass(frozen=True)
class Base2Type:
    """Fixed-point binary numeral type (the base2 dialect [25]).

    ``width`` total bits, ``frac`` fractional bits, two's complement
    when signed. Value range and quantization step follow directly.
    """

    width: int
    frac: int
    signed: bool = True

    def __post_init__(self):
        if self.width < 1 or self.frac < 0 or self.frac > self.width:
            raise CompilationError(
                f"invalid base2 type width={self.width} frac={self.frac}")

    def __str__(self) -> str:
        sign = "s" if self.signed else "u"
        return f"base2.fixed<{sign}{self.width}_{self.frac}>"

    @property
    def scale(self) -> float:
        return 2.0 ** -self.frac

    @property
    def min_value(self) -> float:
        if self.signed:
            return -(2 ** (self.width - 1)) * self.scale
        return 0.0

    @property
    def max_value(self) -> float:
        if self.signed:
            return (2 ** (self.width - 1) - 1) * self.scale
        return (2 ** self.width - 1) * self.scale

    def quantize(self, value: float) -> int:
        """Float -> clamped integer representation."""
        raw = round(value / self.scale)
        lo = round(self.min_value / self.scale)
        hi = round(self.max_value / self.scale)
        return max(lo, min(hi, raw))

    def dequantize(self, raw: int) -> float:
        return raw * self.scale


@dataclass(frozen=True)
class TensorType:
    """A dense tensor with static shape."""

    shape: tuple[int, ...]
    element: ScalarType | Base2Type

    def __post_init__(self):
        if any(d < 1 for d in self.shape):
            raise CompilationError(f"bad tensor shape {self.shape}")

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"tensor<{dims}x{self.element}>"

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n


Type = ScalarType | Base2Type | TensorType


# -- values and operations ---------------------------------------------------------------


@dataclass(eq=False)
class Value:
    """An SSA value: produced by exactly one op (or a function arg)."""

    type: Type
    name: str
    producer: "Operation | None" = None

    def __repr__(self) -> str:
        return f"%{self.name}: {self.type}"


@dataclass(eq=False)
class Operation:
    """One IR operation: ``results = dialect.op(operands) {attrs}``."""

    name: str  # "dialect.opname"
    operands: list[Value]
    attributes: dict[str, Any]
    results: list[Value]

    @property
    def dialect(self) -> str:
        return self.name.split(".", 1)[0]

    def result(self, index: int = 0) -> Value:
        return self.results[index]

    def __repr__(self) -> str:
        res = ", ".join(f"%{r.name}" for r in self.results)
        args = ", ".join(f"%{o.name}" for o in self.operands)
        attrs = (" " + str(self.attributes)) if self.attributes else ""
        head = f"{res} = " if res else ""
        return f"{head}{self.name}({args}){attrs}"


@dataclass(eq=False)
class Function:
    """A single-block function (sufficient for dataflow kernels)."""

    name: str
    arguments: list[Value]
    ops: list[Operation] = field(default_factory=list)
    returns: list[Value] = field(default_factory=list)

    @property
    def arg_types(self) -> list[Type]:
        return [a.type for a in self.arguments]

    @property
    def return_types(self) -> list[Type]:
        return [r.type for r in self.returns]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lines = [f"func @{self.name}({', '.join(map(repr, self.arguments))})"]
        lines += [f"  {op!r}" for op in self.ops]
        lines.append(f"  return {', '.join('%' + r.name for r in self.returns)}")
        return "\n".join(lines)


@dataclass(eq=False)
class Module:
    """Top-level container of functions."""

    name: str
    functions: dict[str, Function] = field(default_factory=dict)

    def add(self, function: Function) -> Function:
        if function.name in self.functions:
            raise CompilationError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        if name not in self.functions:
            raise CompilationError(f"unknown function {name!r}")
        return self.functions[name]


class Builder:
    """Constructs SSA into a function with fresh value names."""

    def __init__(self, module: Module, func_name: str,
                 arg_types: list[Type]):
        self._counter = itertools.count()
        args = [Value(t, f"arg{i}") for i, t in enumerate(arg_types)]
        self.function = Function(name=func_name, arguments=args)
        module.add(self.function)

    def _fresh(self, type_: Type) -> Value:
        return Value(type_, f"v{next(self._counter)}")

    def op(self, name: str, operands: list[Value],
           result_types: list[Type],
           attributes: dict[str, Any] | None = None) -> Operation:
        """Append an operation; returns it (use .result() for the value)."""
        operation = Operation(
            name=name,
            operands=list(operands),
            attributes=dict(attributes or {}),
            results=[self._fresh(t) for t in result_types],
        )
        for res in operation.results:
            res.producer = operation
        self.function.ops.append(operation)
        return operation

    def ret(self, values: list[Value]) -> None:
        self.function.returns = list(values)

    @property
    def args(self) -> list[Value]:
        return self.function.arguments


# -- op registry and verification -------------------------------------------------------

#: name -> (verify_fn(op) -> None). Dialect modules register here.
OP_VERIFIERS: dict[str, Callable[[Operation], None]] = {}


def register_op(name: str,
                verifier: Callable[[Operation], None] | None = None) -> None:
    """Register an op name (and optional structural verifier)."""
    OP_VERIFIERS[name] = verifier or (lambda op: None)


def verify_function(function: Function) -> list[str]:
    """SSA dominance + per-op checks; returns a list of problems."""
    problems: list[str] = []
    defined: set[int] = {id(a) for a in function.arguments}
    for op in function.ops:
        for operand in op.operands:
            if id(operand) not in defined:
                problems.append(
                    f"{function.name}: op {op.name} uses undefined value "
                    f"%{operand.name}")
        if op.name not in OP_VERIFIERS:
            problems.append(f"{function.name}: unregistered op {op.name}")
        else:
            try:
                OP_VERIFIERS[op.name](op)
            except CompilationError as exc:
                problems.append(f"{function.name}: {op.name}: {exc}")
        for res in op.results:
            defined.add(id(res))
    for ret in function.returns:
        if id(ret) not in defined:
            problems.append(
                f"{function.name}: returns undefined value %{ret.name}")
    return problems


def verify_module(module: Module) -> None:
    """Raise :class:`CompilationError` listing all verification problems."""
    problems = []
    for function in module.functions.values():
        problems += verify_function(function)
    if problems:
        raise CompilationError(
            f"module {module.name!r} failed verification: "
            + "; ".join(problems)
        )
