"""The dfg dialect: static dataflow graphs (dfg-mlir analogue).

Actors wrap IR functions; channels carry tokens with SDF
production/consumption rates. Provides the classic SDF analyses —
consistency (repetition vector via balance equations), deadlock-free
buffer sizing, and throughput estimation — plus a functional executor
that fires actors with the reference interpreter, used to check HLS and
CGRA lowerings for equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd

import networkx as nx

from repro.core.errors import CompilationError
from repro.dpe.mlir.interp import Interpreter
from repro.dpe.mlir.ir import Module


@dataclass
class Actor:
    """A dataflow actor bound to an IR function.

    ``input_rates``/``output_rates`` give tokens consumed/produced per
    firing, in the order of the function's arguments/results.
    """

    name: str
    function: str
    input_rates: tuple[int, ...] = ()
    output_rates: tuple[int, ...] = ()
    # Cost model for scheduling/throughput (cycles per firing).
    cycles_per_firing: int = 1

    def __post_init__(self):
        if any(r < 1 for r in self.input_rates + self.output_rates):
            raise CompilationError(
                f"actor {self.name}: rates must be >= 1")


@dataclass
class Channel:
    """A FIFO from one actor output port to another's input port."""

    src: str
    src_port: int
    dst: str
    dst_port: int
    initial_tokens: int = 0


class DataflowGraph:
    """A static (synchronous) dataflow graph."""

    def __init__(self, name: str, module: Module):
        self.name = name
        self.module = module
        self.actors: dict[str, Actor] = {}
        self.channels: list[Channel] = []
        # External interface: channels into/out of the graph.
        self.inputs: list[tuple[str, int]] = []  # (actor, port)
        self.outputs: list[tuple[str, int]] = []

    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self.actors:
            raise CompilationError(f"duplicate actor {actor.name!r}")
        self.module.function(actor.function)  # existence check
        self.actors[actor.name] = actor
        return actor

    def connect(self, src: str, src_port: int, dst: str, dst_port: int,
                initial_tokens: int = 0) -> Channel:
        for endpoint in (src, dst):
            if endpoint not in self.actors:
                raise CompilationError(f"unknown actor {endpoint!r}")
        channel = Channel(src, src_port, dst, dst_port, initial_tokens)
        self.channels.append(channel)
        return channel

    def mark_input(self, actor: str, port: int) -> None:
        self.inputs.append((actor, port))

    def mark_output(self, actor: str, port: int) -> None:
        self.outputs.append((actor, port))

    # -- SDF analyses ---------------------------------------------------------

    def repetition_vector(self) -> dict[str, int]:
        """Solve the balance equations; raises when inconsistent."""
        if not self.actors:
            return {}
        ratios: dict[str, Fraction] = {}
        order = list(self.actors)
        ratios[order[0]] = Fraction(1)
        # Propagate ratios over an undirected traversal of the channels.
        adjacency: dict[str, list[tuple[str, Fraction]]] = {
            a: [] for a in self.actors}
        for ch in self.channels:
            prod = self.actors[ch.src].output_rates[ch.src_port]
            cons = self.actors[ch.dst].input_rates[ch.dst_port]
            # r_src * prod == r_dst * cons
            adjacency[ch.src].append((ch.dst, Fraction(prod, cons)))
            adjacency[ch.dst].append((ch.src, Fraction(cons, prod)))
        stack = [order[0]]
        while stack:
            current = stack.pop()
            for neighbour, factor in adjacency[current]:
                expected = ratios[current] * factor
                if neighbour in ratios:
                    if ratios[neighbour] != expected:
                        raise CompilationError(
                            f"graph {self.name}: inconsistent SDF rates "
                            f"at actor {neighbour}")
                else:
                    ratios[neighbour] = expected
                    stack.append(neighbour)
        for actor in self.actors:
            ratios.setdefault(actor, Fraction(1))  # disconnected actor
        denominator_lcm = 1
        for frac in ratios.values():
            denominator_lcm = denominator_lcm * frac.denominator // gcd(
                denominator_lcm, frac.denominator)
        reps = {a: int(f * denominator_lcm) for a, f in ratios.items()}
        divisor = 0
        for value in reps.values():
            divisor = gcd(divisor, value)
        return {a: v // max(1, divisor) for a, v in reps.items()}

    def buffer_sizes(self) -> dict[tuple[str, str], int]:
        """Conservative per-channel buffer bound for one iteration."""
        reps = self.repetition_vector()
        sizes = {}
        for ch in self.channels:
            produced = reps[ch.src] * \
                self.actors[ch.src].output_rates[ch.src_port]
            sizes[(ch.src, ch.dst)] = produced + ch.initial_tokens
        return sizes

    def throughput_estimate(self, parallel_units: int = 1) -> float:
        """Graph iterations per cycle on *parallel_units* executors."""
        reps = self.repetition_vector()
        total_cycles = sum(
            reps[name] * actor.cycles_per_firing
            for name, actor in self.actors.items())
        if total_cycles == 0:
            return float("inf")
        critical = self._critical_path_cycles(reps)
        effective = max(critical, total_cycles / parallel_units)
        return 1.0 / effective

    def _critical_path_cycles(self, reps: dict[str, int]) -> int:
        graph = nx.DiGraph()
        for name, actor in self.actors.items():
            graph.add_node(name, cost=reps[name] * actor.cycles_per_firing)
        for ch in self.channels:
            if ch.initial_tokens == 0:  # tokens break the dependency
                graph.add_edge(ch.src, ch.dst)
        if not nx.is_directed_acyclic_graph(graph):
            raise CompilationError(
                f"graph {self.name}: zero-token cycle (deadlock)")
        best: dict[str, int] = {}
        for node in nx.topological_sort(graph):
            cost = graph.nodes[node]["cost"]
            preds = list(graph.predecessors(node))
            best[node] = cost + max((best[p] for p in preds), default=0)
        return max(best.values(), default=0)

    # -- functional execution ----------------------------------------------------

    def execute(self, external_inputs: dict[tuple[str, int], list],
                iterations: int = 1) -> dict[tuple[str, int], list]:
        """Fire the graph; returns tokens on output ports.

        ``external_inputs`` maps (actor, port) to a token list; each
        graph iteration consumes tokens per the repetition vector.
        """
        reps = self.repetition_vector()
        interp = Interpreter(self.module)
        queues: dict[tuple[str, int], list] = {}
        for ch in self.channels:
            queues[(ch.dst, ch.dst_port)] = [None] * ch.initial_tokens
        for key, tokens in external_inputs.items():
            queues.setdefault(key, []).extend(tokens)
        outputs: dict[tuple[str, int], list] = {
            key: [] for key in self.outputs}
        out_channels: dict[tuple[str, int], list[tuple[str, int]]] = {}
        for ch in self.channels:
            out_channels.setdefault((ch.src, ch.src_port), []).append(
                (ch.dst, ch.dst_port))
        for _ in range(iterations):
            remaining = {name: reps[name] for name in self.actors}
            progress = True
            while any(remaining.values()) and progress:
                progress = False
                for name, actor in self.actors.items():
                    if remaining[name] == 0:
                        continue
                    if not self._can_fire(actor, queues):
                        continue
                    self._fire(actor, interp, queues, out_channels, outputs)
                    remaining[name] -= 1
                    progress = True
            if any(remaining.values()):
                starved = [n for n, r in remaining.items() if r]
                raise CompilationError(
                    f"graph {self.name}: deadlock/starvation at {starved}")
        return outputs

    def _can_fire(self, actor: Actor, queues) -> bool:
        for port, rate in enumerate(actor.input_rates):
            if len(queues.get((actor.name, port), [])) < rate:
                return False
        return True

    def _fire(self, actor: Actor, interp, queues, out_channels,
              outputs) -> None:
        args = []
        for port, rate in enumerate(actor.input_rates):
            queue = queues[(actor.name, port)]
            tokens, queues[(actor.name, port)] = queue[:rate], queue[rate:]
            args.extend(tokens)
        results = interp.run(actor.function, *args)
        produced: list = []
        for value, rate in zip(results, actor.output_rates):
            produced.append([value] * 1 if rate == 1 else list(value))
        for port, tokens in enumerate(produced):
            if (actor.name, port) in outputs:
                outputs[(actor.name, port)].extend(tokens)
            for dst in out_channels.get((actor.name, port), []):
                queues.setdefault(dst, []).extend(tokens)
