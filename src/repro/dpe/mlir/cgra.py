"""The cgra dialect: mapping compute kernels onto a CGRA overlay.

Reproduces the "ONNX to CGRAs" flow direction ([26]) and the cgra-mlir
dialect: a :class:`CgraModel` describes a grid of processing elements
with supported op classes; :func:`map_function` places a function's ops
onto PEs with a modulo-scheduling-style list scheduler, producing a
``cgra.config`` operation whose attributes are the configuration
(placements + schedule). :class:`CgraMachine` executes a configuration
cycle-accurately-ish, giving both functional results (checked against
the interpreter) and latency/energy estimates used as operating-point
meta-information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import Function, Module, Operation

# Op classes a PE may support, keyed by op name prefix.
_OP_CLASS = {
    "arith.addi": "alu", "arith.subi": "alu", "arith.muli": "mul",
    "arith.addf": "alu", "arith.subf": "alu", "arith.mulf": "mul",
    "arith.divf": "div", "arith.maxf": "alu", "arith.minf": "alu",
    "arith.cmp": "alu", "arith.select": "alu", "arith.constant": "const",
    "base2.add": "alu", "base2.mul": "mul", "base2.relu": "alu",
    "base2.quantize": "alu", "base2.dequantize": "alu",
}

_OP_LATENCY = {"alu": 1, "mul": 2, "div": 8, "const": 0}
_OP_ENERGY_PJ = {"alu": 1.0, "mul": 3.0, "div": 12.0, "const": 0.1}


@dataclass(frozen=True)
class CgraModel:
    """A rows x cols grid of PEs, each supporting a set of op classes."""

    rows: int
    cols: int
    pe_classes: tuple[str, ...] = ("alu", "mul", "const")
    clock_mhz: float = 200.0

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise CompilationError("CGRA grid must be at least 1x1")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def supports(self, op_class: str) -> bool:
        return op_class in self.pe_classes


@dataclass
class Placement:
    """One op placed on one PE at one schedule slot."""

    op_index: int
    op_name: str
    pe: int
    start_cycle: int
    latency: int


@dataclass
class CgraConfig:
    """A complete configuration: placements plus derived metrics."""

    function: str
    model: CgraModel
    placements: list[Placement]
    total_cycles: int

    @property
    def utilized_pes(self) -> int:
        return len({p.pe for p in self.placements})

    def latency_s(self) -> float:
        return self.total_cycles / (self.model.clock_mhz * 1e6)

    def energy_j(self) -> float:
        total_pj = sum(
            _OP_ENERGY_PJ[_OP_CLASS[p.op_name]] for p in self.placements)
        return total_pj * 1e-12

    def to_attributes(self) -> dict[str, Any]:
        """Attribute dict for embedding in a ``cgra.config`` op."""
        return {
            "placements": [
                (p.op_index, p.op_name, p.pe, p.start_cycle, p.latency)
                for p in self.placements
            ],
            "total_cycles": self.total_cycles,
            "grid": (self.model.rows, self.model.cols),
        }


def op_class_of(op: Operation) -> str:
    """The PE class an op needs; raises for unmappable ops."""
    op_class = _OP_CLASS.get(op.name)
    if op_class is None:
        raise CompilationError(f"op {op.name} cannot map to a CGRA PE")
    return op_class


def map_function(module: Module, func_name: str,
                 model: CgraModel) -> CgraConfig:
    """List-schedule a scalar function's ops onto the CGRA grid.

    Dependencies constrain start cycles; each PE runs one op at a time.
    Raises when the function contains an op class the PEs lack.
    """
    function = module.function(func_name)
    # Check class support up front, collecting all problems.
    unsupported = sorted({
        op.name for op in function.ops
        if not model.supports(op_class_of(op))})
    if unsupported:
        raise CompilationError(
            f"CGRA lacks support for: {', '.join(unsupported)}")
    ready_time: dict[int, int] = {id(a): 0 for a in function.arguments}
    pe_free_at = [0] * model.num_pes
    placements: list[Placement] = []
    for index, op in enumerate(function.ops):
        op_class = op_class_of(op)
        latency = _OP_LATENCY[op_class]
        earliest = max((ready_time[id(v)] for v in op.operands), default=0)
        # Pick the PE that lets the op start soonest (ties: lowest id).
        best_pe = min(range(model.num_pes),
                      key=lambda pe: (max(pe_free_at[pe], earliest), pe))
        start = max(pe_free_at[best_pe], earliest)
        pe_free_at[best_pe] = start + max(1, latency)
        placements.append(Placement(index, op.name, best_pe, start, latency))
        for res in op.results:
            ready_time[id(res)] = start + latency
    total = max((p.start_cycle + max(1, p.latency) for p in placements),
                default=0)
    return CgraConfig(function=func_name, model=model,
                      placements=placements, total_cycles=total)


def emit_config_op(module: Module, config: CgraConfig) -> Operation:
    """Wrap a config as a ``cgra.config`` op inside its function."""
    function = module.function(config.function)
    op = Operation(name="cgra.config", operands=[],
                   attributes=config.to_attributes(), results=[])
    function.ops.append(op)
    return op


class CgraMachine:
    """Executes a configured function, honouring the schedule.

    Functional results must equal the plain interpreter's (the lowering
    equivalence check); cycle count comes from the schedule.
    """

    def __init__(self, module: Module, config: CgraConfig):
        self.module = module
        self.config = config

    def run(self, *args) -> tuple[list[Any], int]:
        """Returns (results, cycles)."""
        function = self.module.function(self.config.function)
        env: dict[int, Any] = {}
        for formal, actual in zip(function.arguments, args):
            env[id(formal)] = actual
        from repro.dpe.mlir.interp import Interpreter
        interp = Interpreter(self.module)
        schedule = sorted(self.config.placements,
                          key=lambda p: (p.start_cycle, p.pe))
        body_ops = [op for op in function.ops if op.name != "cgra.config"]
        for placement in schedule:
            op = body_ops[placement.op_index]
            inputs = [env[id(v)] for v in op.operands]
            outputs = interp._execute(op, inputs)
            for value, result in zip(op.results, outputs):
                env[id(value)] = result
        results = [env[id(r)] for r in function.returns]
        return results, self.config.total_cycles
