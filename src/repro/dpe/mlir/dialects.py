"""Dialect definitions: arith, tensor, base2 and their verifiers.

Each op is registered with a structural verifier; the interpreter in
:mod:`repro.dpe.mlir.interp` gives them executable semantics so every
lowering can be checked for functional equivalence.
"""

from __future__ import annotations

from repro.core.errors import CompilationError
from repro.dpe.mlir.ir import (
    Base2Type,
    Operation,
    ScalarType,
    TensorType,
    register_op,
)


def _same_type(a, b) -> bool:
    return a == b


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise CompilationError(message)


# -- arith dialect ----------------------------------------------------------------


def _verify_binary_same(op: Operation) -> None:
    _require(len(op.operands) == 2, "needs exactly two operands")
    _require(len(op.results) == 1, "produces exactly one result")
    lhs, rhs = op.operands
    _require(_same_type(lhs.type, rhs.type),
             f"operand types differ: {lhs.type} vs {rhs.type}")
    _require(_same_type(lhs.type, op.results[0].type),
             "result type must match operand type")


def _verify_const(op: Operation) -> None:
    _require(len(op.operands) == 0, "constants take no operands")
    _require("value" in op.attributes, "constant needs a 'value' attribute")


def _verify_cmp(op: Operation) -> None:
    _require(len(op.operands) == 2, "needs exactly two operands")
    _require(op.attributes.get("predicate") in
             ("eq", "ne", "lt", "le", "gt", "ge"),
             "cmp needs a valid 'predicate' attribute")
    _require(op.results[0].type == ScalarType("i1"),
             "cmp result must be i1")


def _verify_select(op: Operation) -> None:
    _require(len(op.operands) == 3, "select takes cond, a, b")
    _require(op.operands[0].type == ScalarType("i1"),
             "select condition must be i1")
    _require(_same_type(op.operands[1].type, op.operands[2].type),
             "select branches must have the same type")


for _name in ("arith.addi", "arith.subi", "arith.muli",
              "arith.addf", "arith.subf", "arith.mulf", "arith.divf",
              "arith.maxf", "arith.minf"):
    register_op(_name, _verify_binary_same)
register_op("arith.constant", _verify_const)
register_op("arith.cmp", _verify_cmp)
register_op("arith.select", _verify_select)


# -- tensor dialect (NN kernels; the torch-MLIR/ONNX entry point) -------------------


def _verify_matmul(op: Operation) -> None:
    _require(len(op.operands) == 2, "matmul takes two operands")
    a, b = op.operands
    _require(isinstance(a.type, TensorType) and isinstance(b.type, TensorType),
             "matmul operands must be tensors")
    _require(len(a.type.shape) == 2 and len(b.type.shape) == 2,
             "matmul needs rank-2 tensors")
    _require(a.type.shape[1] == b.type.shape[0],
             f"matmul inner dims differ: {a.type.shape} x {b.type.shape}")
    result = op.results[0].type
    _require(isinstance(result, TensorType)
             and result.shape == (a.type.shape[0], b.type.shape[1]),
             "matmul result shape mismatch")


def _verify_elementwise(op: Operation) -> None:
    _require(len(op.operands) >= 1, "needs at least one operand")
    first = op.operands[0].type
    _require(isinstance(first, TensorType), "operands must be tensors")
    for other in op.operands[1:]:
        _require(other.type == first, "elementwise operand types differ")
    _require(op.results[0].type == first,
             "elementwise result type mismatch")


def _verify_reshape(op: Operation) -> None:
    _require(len(op.operands) == 1, "reshape takes one operand")
    src = op.operands[0].type
    dst = op.results[0].type
    _require(isinstance(src, TensorType) and isinstance(dst, TensorType),
             "reshape needs tensor types")
    _require(src.num_elements == dst.num_elements,
             "reshape must preserve element count")


register_op("tensor.matmul", _verify_matmul)
register_op("tensor.add", _verify_elementwise)
register_op("tensor.mul", _verify_elementwise)
register_op("tensor.relu", _verify_elementwise)
register_op("tensor.reshape", _verify_reshape)
register_op("tensor.constant", _verify_const)


# -- base2 dialect (fixed-point numerals [25]) ----------------------------------------


def _verify_quantize(op: Operation) -> None:
    _require(len(op.operands) == 1, "quantize takes one operand")
    dst = op.results[0].type
    elem = dst.element if isinstance(dst, TensorType) else dst
    _require(isinstance(elem, Base2Type),
             "quantize result must be a base2 type")


def _verify_dequantize(op: Operation) -> None:
    _require(len(op.operands) == 1, "dequantize takes one operand")
    src = op.operands[0].type
    elem = src.element if isinstance(src, TensorType) else src
    _require(isinstance(elem, Base2Type),
             "dequantize operand must be a base2 type")


def _verify_fixed_binary(op: Operation) -> None:
    _require(len(op.operands) == 2, "needs exactly two operands")
    for operand in op.operands:
        t = operand.type
        elem = t.element if isinstance(t, TensorType) else t
        _require(isinstance(elem, Base2Type),
                 "fixed-point op needs base2 operands")


register_op("base2.quantize", _verify_quantize)
register_op("base2.dequantize", _verify_dequantize)
register_op("base2.add", _verify_fixed_binary)
register_op("base2.mul", _verify_fixed_binary)
register_op("base2.matmul", _verify_fixed_binary)
register_op("base2.relu", lambda op: None)


# -- dfg dialect markers (graph structure lives in repro.dpe.mlir.dataflow) ------------

register_op("dfg.push", lambda op: None)
register_op("dfg.pull", lambda op: None)


# -- cgra dialect ------------------------------------------------------------------


def _verify_cgra_config(op: Operation) -> None:
    _require("placements" in op.attributes,
             "cgra.config needs a 'placements' attribute")


register_op("cgra.config", _verify_cgra_config)
