"""Mini-MLIR: SSA IR, dialects (arith/tensor/base2/dfg/cgra), passes.

The DPE's common interoperability framework (paper Sec. V), modelled on
the MLIR infrastructure of the EVEREST project: one IR shared by all
front-ends (NumPy-like tensor programs, ONNX-style NN graphs) and all
back-ends (CPU interpretation, FPGA HLS, CGRA configuration).
"""

from repro.dpe.mlir.ir import (
    Base2Type,
    Builder,
    F32,
    F64,
    Function,
    I1,
    I32,
    I64,
    Module,
    Operation,
    ScalarType,
    TensorType,
    Value,
    verify_function,
    verify_module,
)
import repro.dpe.mlir.dialects  # noqa: F401  (registers ops)
from repro.dpe.mlir.interp import Interpreter
from repro.dpe.mlir.passes import (
    canonicalize,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    quantization_error,
    quantize_to_base2,
)
from repro.dpe.mlir.dataflow import Actor, Channel, DataflowGraph
from repro.dpe.mlir.cgra import (
    CgraConfig,
    CgraMachine,
    CgraModel,
    emit_config_op,
    map_function,
)

__all__ = [
    "Base2Type", "Builder", "F32", "F64", "Function", "I1", "I32", "I64",
    "Module", "Operation", "ScalarType", "TensorType", "Value",
    "verify_function", "verify_module", "Interpreter",
    "canonicalize", "eliminate_common_subexpressions",
    "eliminate_dead_code", "fold_constants", "quantization_error",
    "quantize_to_base2", "Actor", "Channel", "DataflowGraph",
    "CgraConfig", "CgraMachine", "CgraModel", "emit_config_op",
    "map_function",
]
