"""Design-space exploration for heterogeneous platforms (mocasin analogue).

The paper extends Mocasin, "a high-level Python-based DSE tool for
heterogeneous manycores", to CGRA-bearing platforms, and exports
per-application operating points as deployment meta-information
([29], [30]). This module reproduces that flow: a platform model, a
task-graph-to-processor mapping representation, an analytic list-schedule
evaluator for latency/energy, three exploration strategies (exhaustive,
genetic, simulated annealing), Pareto-front extraction, and the
operating-point export consumed by the MIRTO Node Manager at runtime.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field

import networkx as nx

from repro.core.errors import ConfigurationError, ValidationError
from repro.continuum.workload import Application, KernelClass


@dataclass(frozen=True)
class ProcessorModel:
    """One processing element of the target platform."""

    name: str
    kind: str  # "cpu" | "fpga" | "cgra" | "gpu"
    gops: float
    busy_power_w: float
    idle_power_w: float
    accel_kernels: dict = field(default_factory=dict, hash=False)

    def __post_init__(self):
        if self.gops <= 0:
            raise ConfigurationError("processor gops must be positive")

    def time_for(self, megaops: float, kernel: KernelClass) -> float:
        speedup = self.accel_kernels.get(kernel, 1.0)
        return (megaops / 1e3) / (self.gops * speedup)


@dataclass(frozen=True)
class PlatformModel:
    """Processors plus a shared interconnect (latency + bandwidth)."""

    name: str
    processors: tuple[ProcessorModel, ...]
    interconnect_latency_s: float = 1e-6
    interconnect_bw_bps: float = 1e9

    def __post_init__(self):
        if not self.processors:
            raise ConfigurationError("platform needs processors")
        names = [p.name for p in self.processors]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate processor names")

    def processor(self, name: str) -> ProcessorModel:
        for proc in self.processors:
            if proc.name == name:
                return proc
        raise ConfigurationError(f"unknown processor {name!r}")

    def comm_time(self, nbytes: int) -> float:
        return self.interconnect_latency_s \
            + nbytes * 8 / self.interconnect_bw_bps


@dataclass(frozen=True)
class Mapping:
    """Assignment of every task to a processor."""

    assignment: tuple[tuple[str, str], ...]  # (task, processor) sorted

    @staticmethod
    def of(assignment: dict[str, str]) -> "Mapping":
        return Mapping(tuple(sorted(assignment.items())))

    def processor_of(self, task: str) -> str:
        for t, p in self.assignment:
            if t == task:
                return p
        raise ValidationError(f"task {task!r} not in mapping")

    def as_dict(self) -> dict[str, str]:
        return dict(self.assignment)


@dataclass(frozen=True)
class EvaluationResult:
    """KPIs of one mapping."""

    mapping: Mapping
    latency_s: float
    energy_j: float

    def dominates(self, other: "EvaluationResult") -> bool:
        return (self.latency_s <= other.latency_s
                and self.energy_j <= other.energy_j
                and (self.latency_s < other.latency_s
                     or self.energy_j < other.energy_j))


class MappingEvaluator:
    """Analytic list-schedule evaluation of a mapping.

    Tasks run in topological order; each processor serializes its tasks;
    cross-processor edges pay interconnect time. Energy is the marginal
    (multi-tenant) cost: each task pays its duration at the executing
    processor's full busy power. Idle power is *not* charged to the
    application — in a continuum, idle capacity is shared across
    tenants, and charging one application for a whole server's idle
    draw would make every heterogeneous mapping look wasteful and
    collapse the latency/energy trade-off.
    """

    def __init__(self, application: Application, platform: PlatformModel):
        self.application = application
        self.platform = platform
        self._topo = list(nx.topological_sort(application.graph))
        self.evaluations = 0

    def evaluate(self, mapping: Mapping) -> EvaluationResult:
        self.evaluations += 1
        assignment = mapping.as_dict()
        missing = [t for t in self._topo if t not in assignment]
        if missing:
            raise ValidationError(f"mapping misses tasks: {missing}")
        proc_free: dict[str, float] = {
            p.name: 0.0 for p in self.platform.processors}
        finish: dict[str, float] = {}
        busy_energy = 0.0
        for task_name in self._topo:
            task = self.application.task(task_name)
            proc = self.platform.processor(assignment[task_name])
            ready = 0.0
            for pred in self.application.predecessors(task_name):
                arrival = finish[pred]
                if assignment[pred] != assignment[task_name]:
                    arrival += self.platform.comm_time(
                        self.application.edge_bytes(pred, task_name))
                ready = max(ready, arrival)
            start = max(ready, proc_free[proc.name])
            duration = proc.time_for(task.megaops, task.kernel)
            finish[task_name] = start + duration
            proc_free[proc.name] = finish[task_name]
            busy_energy += duration * proc.busy_power_w
        makespan = max(finish.values(), default=0.0)
        return EvaluationResult(mapping=mapping, latency_s=makespan,
                                energy_j=busy_energy)


def pareto_front(results: list[EvaluationResult]) -> list[EvaluationResult]:
    """Non-dominated subset, sorted by latency."""
    front = []
    for candidate in results:
        if not any(other.dominates(candidate) for other in results
                   if other is not candidate):
            front.append(candidate)
    # Deduplicate identical KPI points.
    unique: dict[tuple[float, float], EvaluationResult] = {}
    for result in front:
        unique.setdefault((result.latency_s, result.energy_j), result)
    return sorted(unique.values(), key=lambda r: r.latency_s)


class ExhaustiveExplorer:
    """Enumerate every mapping (small problems only)."""

    def __init__(self, evaluator: MappingEvaluator, limit: int = 200_000):
        self.evaluator = evaluator
        self.limit = limit

    def explore(self) -> list[EvaluationResult]:
        tasks = [t.name for t in self.evaluator.application.tasks]
        procs = [p.name for p in self.evaluator.platform.processors]
        space = len(procs) ** len(tasks)
        if space > self.limit:
            raise ConfigurationError(
                f"exhaustive space {space} exceeds limit {self.limit}")
        results = []
        for combo in itertools.product(procs, repeat=len(tasks)):
            mapping = Mapping.of(dict(zip(tasks, combo)))
            results.append(self.evaluator.evaluate(mapping))
        return results


class GeneticExplorer:
    """GA over mappings: tournament selection, crossover, mutation."""

    def __init__(self, evaluator: MappingEvaluator, rng: random.Random,
                 population: int = 30, generations: int = 25,
                 mutation_rate: float = 0.15,
                 objective: str = "latency"):
        if objective not in ("latency", "energy", "edp"):
            raise ConfigurationError(f"unknown objective {objective!r}")
        self.evaluator = evaluator
        self.rng = rng
        self.population_size = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.objective = objective

    def _fitness(self, result: EvaluationResult) -> float:
        if self.objective == "latency":
            return result.latency_s
        if self.objective == "energy":
            return result.energy_j
        return result.latency_s * result.energy_j  # EDP

    def explore(self) -> list[EvaluationResult]:
        tasks = [t.name for t in self.evaluator.application.tasks]
        procs = [p.name for p in self.evaluator.platform.processors]
        population = [
            {t: self.rng.choice(procs) for t in tasks}
            for _ in range(self.population_size)
        ]
        evaluated: list[EvaluationResult] = []

        def score(genome: dict[str, str]) -> EvaluationResult:
            result = self.evaluator.evaluate(Mapping.of(genome))
            evaluated.append(result)
            return result

        scored = [(score(g), g) for g in population]
        for _ in range(self.generations):
            scored.sort(key=lambda pair: self._fitness(pair[0]))
            survivors = scored[: max(2, self.population_size // 2)]
            children = []
            while len(children) + len(survivors) < self.population_size:
                pa = self.rng.choice(survivors)[1]
                pb = self.rng.choice(survivors)[1]
                child = {t: (pa if self.rng.random() < 0.5 else pb)[t]
                         for t in tasks}
                for t in tasks:
                    if self.rng.random() < self.mutation_rate:
                        child[t] = self.rng.choice(procs)
                children.append(child)
            scored = survivors + [(score(c), c) for c in children]
        return evaluated


class AnnealingExplorer:
    """Simulated annealing over single-task reassignment moves."""

    def __init__(self, evaluator: MappingEvaluator, rng: random.Random,
                 iterations: int = 500, initial_temp: float = 1.0,
                 cooling: float = 0.995, objective: str = "latency"):
        self.evaluator = evaluator
        self.rng = rng
        self.iterations = iterations
        self.initial_temp = initial_temp
        self.cooling = cooling
        self.objective = objective

    def _fitness(self, result: EvaluationResult) -> float:
        if self.objective == "energy":
            return result.energy_j
        if self.objective == "edp":
            return result.latency_s * result.energy_j
        return result.latency_s

    def explore(self) -> list[EvaluationResult]:
        tasks = [t.name for t in self.evaluator.application.tasks]
        procs = [p.name for p in self.evaluator.platform.processors]
        current = {t: self.rng.choice(procs) for t in tasks}
        current_result = self.evaluator.evaluate(Mapping.of(current))
        evaluated = [current_result]
        temp = self.initial_temp
        scale = max(self._fitness(current_result), 1e-12)
        for _ in range(self.iterations):
            candidate = dict(current)
            candidate[self.rng.choice(tasks)] = self.rng.choice(procs)
            result = self.evaluator.evaluate(Mapping.of(candidate))
            evaluated.append(result)
            delta = (self._fitness(result)
                     - self._fitness(current_result)) / scale
            if delta <= 0 or self.rng.random() < math.exp(-delta / temp):
                current, current_result = candidate, result
            temp *= self.cooling
        return evaluated


def export_operating_points(results: list[EvaluationResult],
                            max_points: int = 5) -> list[dict]:
    """Pareto points as runtime meta-information ([29], [30]).

    Returns JSON-safe dicts the DPE embeds in the CSAR and the MIRTO
    Node Manager consumes when trading QoS for energy at runtime.
    """
    front = pareto_front(results)
    if len(front) > max_points:
        step = (len(front) - 1) / (max_points - 1)
        front = [front[round(i * step)] for i in range(max_points)]
    points = []
    for index, result in enumerate(front):
        points.append({
            "name": f"op-{index}",
            "latency_s": result.latency_s,
            "energy_j": result.energy_j,
            "mapping": result.mapping.as_dict(),
        })
    return points
