"""Authenticated secure channels between continuum components.

Implements the "secure communication schemes" of Table I's Security and
Privacy building block: a signed-KEM handshake (the responder's identity
is authenticated with the level's signature scheme, the session key comes
from the level's key-establishment mechanism and HKDF) followed by
AEAD-protected records with strictly increasing nonces and replay
rejection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SecurityError
from repro.security.levels import Identity, SecurityLevel, SecuritySuite
from repro.security.primitives.sha2 import hkdf


@dataclass
class HandshakeTranscript:
    """Record of one handshake, for accounting and the Table II bench."""

    level: SecurityLevel
    initiator: str
    responder: str
    kem_ciphertext_bytes: int
    signature_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.kem_ciphertext_bytes + self.signature_bytes


def _signature_wire_bytes(level: SecurityLevel, signature) -> int:
    """Approximate on-the-wire size of a signature object."""
    if isinstance(signature, bytes):
        return len(signature)
    if isinstance(signature, tuple) and len(signature) == 2:
        first, second = signature
        if isinstance(first, int):  # ECDSA (r, s)
            return 64
        # Dilithium-style (c, z) numpy arrays.
        from repro.security.primitives.lattice import sig_signature_bytes
        return sig_signature_bytes()
    return 0


class SecureChannel:
    """An established bidirectional channel with send/receive protection."""

    def __init__(self, level: SecurityLevel, local: Identity, peer: Identity,
                 session_key: bytes, transcript: HandshakeTranscript):
        self.level = level
        self.local = local
        self.peer = peer
        self.transcript = transcript
        self._suite = SecuritySuite(level, local)
        self._key = session_key
        self._send_counter = 0
        self._highest_received = -1
        self.messages_sent = 0
        self.messages_received = 0

    @staticmethod
    def establish(initiator: Identity, responder: Identity,
                  level: SecurityLevel) -> tuple["SecureChannel",
                                                 "SecureChannel"]:
        """Run the handshake; returns (initiator_end, responder_end).

        Protocol: the initiator encapsulates to the responder's public
        key; the responder signs the KEM ciphertext (proving identity and
        binding the session); both derive the session key with HKDF over
        the shared secret and the transcript.
        """
        init_suite = SecuritySuite(level, initiator)
        resp_suite = SecuritySuite(level, responder)
        secret, kem_ct = init_suite.encapsulate(responder)
        signature = resp_suite.sign(kem_ct)
        if not init_suite.verify(responder, kem_ct, signature):
            raise SecurityError(
                f"handshake {initiator.name}->{responder.name}: responder "
                "signature invalid"
            )
        resp_secret = resp_suite.decapsulate(initiator, kem_ct)
        if resp_secret != secret:
            raise SecurityError("KEM secrets diverged during handshake")
        context = (f"{initiator.name}|{responder.name}|{level.value}"
                   ).encode()
        session_key = hkdf(secret, SecuritySuite(level, initiator)
                           .session_key_size(), info=context)
        transcript = HandshakeTranscript(
            level=level,
            initiator=initiator.name,
            responder=responder.name,
            kem_ciphertext_bytes=len(kem_ct),
            signature_bytes=_signature_wire_bytes(level, signature),
        )
        a_end = SecureChannel(level, initiator, responder, session_key,
                              transcript)
        b_end = SecureChannel(level, responder, initiator, session_key,
                              transcript)
        return a_end, b_end

    def _nonce(self, counter: int, direction: int) -> bytes:
        # The direction byte keeps the two flow directions in disjoint
        # nonce spaces even though they share one session key.
        return bytes([direction]) + counter.to_bytes(8, "big") + b"\x00" * 7

    def _send_direction(self) -> int:
        return 1 if self.local.name == self.transcript.initiator else 2

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        """Protect a message; returns counter || ciphertext || tag."""
        counter = self._send_counter
        self._send_counter += 1
        sealed = self._suite.encrypt(
            self._key, self._nonce(counter, self._send_direction()),
            plaintext, associated_data)
        self.messages_sent += 1
        return counter.to_bytes(8, "big") + sealed

    def open(self, wire: bytes, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt a record; rejects replays and tampering."""
        if len(wire) < 8:
            raise SecurityError("record too short")
        counter = int.from_bytes(wire[:8], "big")
        if counter <= self._highest_received:
            raise SecurityError(f"replayed record counter {counter}")
        recv_direction = 3 - self._send_direction()
        plaintext = self._suite.decrypt(
            self._key, self._nonce(counter, recv_direction),
            wire[8:], associated_data)
        self._highest_received = counter
        self.messages_received += 1
        return plaintext

    def overhead_bytes(self, payload_len: int) -> int:
        """Record overhead added on top of *payload_len* payload bytes."""
        return len(self.seal(b"\x00" * payload_len)) - payload_len
