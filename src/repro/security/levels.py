"""The three MYRTUS security levels (paper Table II).

Each :class:`SecurityLevel` binds the concrete primitives Table II
prescribes:

=============  =======================  =====================  ==================  =====================
Level          Encryption               Authentication         Key exchange        Hashing
=============  =======================  =====================  ==================  =====================
HIGH (PQC)     AES-256                  Dilithium-style        Kyber-style KEM     SHA-512
MEDIUM         AES-128                  RSA                    RSA-KEM             SHA-256
LOW            ASCON-128                ECDSA (P-256)          ECDH (P-256)        ASCON-Hash
=============  =======================  =====================  ==================  =====================

(The paper's table lists "ECDSA" in the low-level key-exchange cell; the
corresponding elliptic-curve key-agreement mechanism is ECDH over the
same curve, which is what we implement.)

A :class:`SecuritySuite` gives a uniform encrypt/sign/encapsulate/hash
interface per level, and :class:`Identity` holds one keypair per scheme
so components can handshake at any level their hardware supports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

import numpy as np

from repro.core.errors import SecurityError
from repro.core.rng import derive_seed
from repro.security.primitives import aes, ascon, ecdsa, lattice, rsa
from repro.security.primitives.sha2 import sha256, sha512


class SecurityLevel(str, Enum):
    """Tiered security levels; comparable via :meth:`rank`."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @property
    def rank(self) -> int:
        return {"low": 0, "medium": 1, "high": 2}[self.value]

    def satisfies(self, required: "SecurityLevel") -> bool:
        """True when this level is at least as strong as *required*."""
        return self.rank >= required.rank

    @classmethod
    def parse(cls, name: str) -> "SecurityLevel":
        try:
            return cls(name.lower())
        except ValueError:
            raise SecurityError(f"unknown security level {name!r}") from None


@dataclass(frozen=True)
class SuiteDescriptor:
    """Names of the primitives a level uses (the Table II row labels)."""

    level: SecurityLevel
    encryption: str
    authentication: str
    key_exchange: str
    hashing: str
    pqc_resistant: bool


SUITE_DESCRIPTORS: dict[SecurityLevel, SuiteDescriptor] = {
    SecurityLevel.HIGH: SuiteDescriptor(
        level=SecurityLevel.HIGH,
        encryption="AES-256",
        authentication="CRYSTALS-Dilithium (module-LWE analogue)",
        key_exchange="CRYSTALS-Kyber (module-LWE analogue)",
        hashing="SHA-512",
        pqc_resistant=True,
    ),
    SecurityLevel.MEDIUM: SuiteDescriptor(
        level=SecurityLevel.MEDIUM,
        encryption="AES-128",
        authentication="RSA",
        key_exchange="RSA-KEM",
        hashing="SHA-256",
        pqc_resistant=False,
    ),
    SecurityLevel.LOW: SuiteDescriptor(
        level=SecurityLevel.LOW,
        encryption="ASCON-128",
        authentication="ECDSA (P-256)",
        key_exchange="ECDH (P-256)",
        hashing="ASCON-Hash",
        pqc_resistant=False,
    ),
}


class Identity:
    """A component's long-term key material across all levels.

    Keys for each level are generated lazily on first use so cheap
    simulations that never touch HIGH do not pay lattice keygen.
    """

    def __init__(self, name: str, seed: int = 0):
        self.name = name
        self._seed = seed
        self._rsa_key: rsa.RsaPrivateKey | None = None
        self._ecdsa_key: ecdsa.EcdsaKeyPair | None = None
        self._kem_key: lattice.KemPrivateKey | None = None
        self._sig_key: lattice.SigPrivateKey | None = None

    def _py_rng(self, tag: str) -> random.Random:
        return random.Random(derive_seed(self._seed,
                                         f"{self.name}:{tag}"))

    def _np_rng(self, tag: str) -> np.random.Generator:
        return np.random.default_rng(
            derive_seed(self._seed, f"{self.name}:{tag}"))

    @property
    def rsa_key(self) -> rsa.RsaPrivateKey:
        if self._rsa_key is None:
            self._rsa_key = rsa.generate_keypair(1024, self._py_rng("rsa"))
        return self._rsa_key

    @property
    def ecdsa_key(self) -> ecdsa.EcdsaKeyPair:
        if self._ecdsa_key is None:
            self._ecdsa_key = ecdsa.generate_keypair(self._py_rng("ecdsa"))
        return self._ecdsa_key

    @property
    def kem_key(self) -> lattice.KemPrivateKey:
        if self._kem_key is None:
            self._kem_key = lattice.kem_generate_keypair(self._np_rng("kem"))
        return self._kem_key

    @property
    def sig_key(self) -> lattice.SigPrivateKey:
        if self._sig_key is None:
            self._sig_key = lattice.sig_generate_keypair(self._np_rng("sig"))
        return self._sig_key


@dataclass
class OperationCounters:
    """Counts of cryptographic operations a suite has performed."""

    encryptions: int = 0
    decryptions: int = 0
    signatures: int = 0
    verifications: int = 0
    encapsulations: int = 0
    decapsulations: int = 0
    hashes: int = 0
    bytes_protected: int = 0


class SecuritySuite:
    """Uniform cryptographic interface at a fixed security level."""

    def __init__(self, level: SecurityLevel, identity: Identity):
        self.level = level
        self.identity = identity
        self.descriptor = SUITE_DESCRIPTORS[level]
        self.counters = OperationCounters()

    # -- symmetric encryption --------------------------------------------------

    def _key_size(self) -> int:
        return {SecurityLevel.HIGH: 32, SecurityLevel.MEDIUM: 16,
                SecurityLevel.LOW: 16}[self.level]

    def encrypt(self, key: bytes, nonce: bytes, plaintext: bytes,
                associated_data: bytes = b"") -> bytes:
        """AEAD-seal *plaintext* under *key*; returns ct || tag."""
        self.counters.encryptions += 1
        self.counters.bytes_protected += len(plaintext)
        if self.level is SecurityLevel.LOW:
            return ascon.ascon128_encrypt(key, nonce.ljust(16, b"\x00")[:16],
                                          plaintext, associated_data)
        return aes.aes_encrypt(key, nonce[:12].ljust(12, b"\x00"),
                               plaintext, associated_data)

    def decrypt(self, key: bytes, nonce: bytes, sealed: bytes,
                associated_data: bytes = b"") -> bytes:
        """Verify and open an AEAD ciphertext."""
        self.counters.decryptions += 1
        if self.level is SecurityLevel.LOW:
            return ascon.ascon128_decrypt(key, nonce.ljust(16, b"\x00")[:16],
                                          sealed, associated_data)
        return aes.aes_decrypt(key, nonce[:12].ljust(12, b"\x00"),
                               sealed, associated_data)

    def session_key_size(self) -> int:
        """Bytes of symmetric key this level's cipher needs."""
        return self._key_size()

    # -- signatures ------------------------------------------------------------

    def sign(self, message: bytes) -> Any:
        """Sign with this identity's level-appropriate signature key."""
        self.counters.signatures += 1
        if self.level is SecurityLevel.HIGH:
            return lattice.sig_sign(self.identity.sig_key, message,
                                    self.identity._np_rng("signing"))
        if self.level is SecurityLevel.MEDIUM:
            return rsa.sign(self.identity.rsa_key, message)
        return ecdsa.sign(self.identity.ecdsa_key, message)

    def verify(self, signer_identity: Identity, message: bytes,
               signature: Any) -> bool:
        """Verify a signature made by *signer_identity* at this level."""
        self.counters.verifications += 1
        if self.level is SecurityLevel.HIGH:
            return lattice.sig_verify(signer_identity.sig_key.public,
                                      message, signature)
        if self.level is SecurityLevel.MEDIUM:
            return rsa.verify(signer_identity.rsa_key.public, message,
                              signature)
        return ecdsa.verify(signer_identity.ecdsa_key.q, message, signature)

    # -- key establishment ----------------------------------------------------------

    def encapsulate(self, peer: Identity) -> tuple[bytes, bytes]:
        """Establish a shared secret towards *peer*: (secret, ciphertext).

        At LOW the "ciphertext" is our ephemeral-free ECDH public key
        (static-static ECDH); at MEDIUM/HIGH it is a real KEM ciphertext.
        """
        self.counters.encapsulations += 1
        if self.level is SecurityLevel.HIGH:
            return lattice.kem_encapsulate(
                peer.kem_key.public, self.identity._np_rng("encap"))
        if self.level is SecurityLevel.MEDIUM:
            return rsa.kem_encapsulate(peer.rsa_key.public,
                                       self.identity._py_rng("encap"))
        secret = ecdsa.ecdh_shared_secret(self.identity.ecdsa_key.d,
                                          peer.ecdsa_key.q)
        return secret, self.identity.ecdsa_key.public_bytes

    def decapsulate(self, peer: Identity, ciphertext: bytes) -> bytes:
        """Recover the shared secret on the responder side."""
        self.counters.decapsulations += 1
        if self.level is SecurityLevel.HIGH:
            return lattice.kem_decapsulate(self.identity.kem_key, ciphertext)
        if self.level is SecurityLevel.MEDIUM:
            return rsa.kem_decapsulate(self.identity.rsa_key, ciphertext)
        peer_point = ecdsa.public_key_from_bytes(ciphertext)
        return ecdsa.ecdh_shared_secret(self.identity.ecdsa_key.d, peer_point)

    # -- hashing ------------------------------------------------------------------

    def hash(self, data: bytes) -> bytes:
        """The level's hash function."""
        self.counters.hashes += 1
        if self.level is SecurityLevel.HIGH:
            return sha512(data)
        if self.level is SecurityLevel.MEDIUM:
            return sha256(data)
        return ascon.ascon_hash(data)


def negotiate_level(required: SecurityLevel,
                    capabilities: list[str]) -> SecurityLevel:
    """Pick the weakest mutually supported level satisfying *required*.

    *capabilities* is the list of level names a device supports (its
    ``max_security_level`` implies all weaker levels).
    """
    supported = set()
    for cap in capabilities:
        level = SecurityLevel.parse(cap)
        for candidate in SecurityLevel:
            if candidate.rank <= level.rank:
                supported.add(candidate)
    eligible = [lvl for lvl in supported if lvl.satisfies(required)]
    if not eligible:
        raise SecurityError(
            f"no supported level satisfies required={required.value} "
            f"given capabilities={capabilities}"
        )
    return min(eligible, key=lambda lvl: lvl.rank)
