"""Authentication and authorization for MIRTO agents and the continuum.

Covers the Table I Security and Privacy commitments: "authorization and
authentication mechanisms of users/resources". The MIRTO agent's
Authentication Module (paper Fig. 3) validates API callers using
HMAC-signed bearer tokens; authorization is role-based, with permissions
like ``deploy``, ``observe`` and ``reconfigure`` scoped per layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.errors import SecurityError
from repro.security.primitives.sha2 import hmac


# Permission vocabulary for orchestration actions.
PERMISSIONS = frozenset({
    "deploy", "undeploy", "observe", "reconfigure", "manage-users",
    "manage-slices",
})

BUILTIN_ROLES: dict[str, frozenset[str]] = {
    "admin": PERMISSIONS,
    "operator": frozenset({"deploy", "undeploy", "observe", "reconfigure"}),
    "developer": frozenset({"deploy", "observe"}),
    "auditor": frozenset({"observe"}),
}


@dataclass(frozen=True)
class User:
    """A principal allowed to talk to a MIRTO agent."""

    name: str
    roles: tuple[str, ...]

    def permissions(self) -> frozenset[str]:
        perms: set[str] = set()
        for role in self.roles:
            perms |= BUILTIN_ROLES.get(role, frozenset())
        return frozenset(perms)


@dataclass
class Token:
    """A bearer token: payload plus HMAC tag."""

    payload: dict
    tag: bytes

    def encode(self) -> bytes:
        body = json.dumps(self.payload, sort_keys=True).encode()
        return body + b"." + self.tag.hex().encode()

    @staticmethod
    def decode(wire: bytes) -> "Token":
        try:
            body, tag_hex = wire.rsplit(b".", 1)
            return Token(json.loads(body), bytes.fromhex(tag_hex.decode()))
        except (ValueError, json.JSONDecodeError) as exc:
            raise SecurityError("malformed token") from exc


class AuthModule:
    """The MIRTO agent's Authentication Module (Fig. 3).

    Issues and validates tokens, tracks users, and answers authorization
    queries. ``now_fn`` supplies the current (simulated) time so token
    expiry follows the simulation clock.
    """

    def __init__(self, secret: bytes, now_fn=None):
        if len(secret) < 16:
            raise SecurityError("auth secret must be at least 16 bytes")
        self._secret = secret
        self._users: dict[str, User] = {}
        self._revoked: set[str] = set()
        self._now = now_fn or (lambda: 0.0)
        self.auth_failures = 0
        self.auth_successes = 0

    # -- user management ---------------------------------------------------------

    def register_user(self, name: str, roles: list[str]) -> User:
        """Create a user with the given roles."""
        unknown = [r for r in roles if r not in BUILTIN_ROLES]
        if unknown:
            raise SecurityError(f"unknown roles: {unknown}")
        user = User(name=name, roles=tuple(roles))
        self._users[name] = user
        return user

    def user(self, name: str) -> User:
        if name not in self._users:
            raise SecurityError(f"unknown user {name!r}")
        return self._users[name]

    # -- tokens -------------------------------------------------------------------

    def issue_token(self, user_name: str, ttl_s: float = 3600.0) -> bytes:
        """Issue a bearer token for an existing user."""
        user = self.user(user_name)
        payload = {
            "sub": user.name,
            "roles": list(user.roles),
            "exp": self._now() + ttl_s,
        }
        body = json.dumps(payload, sort_keys=True).encode()
        return Token(payload, hmac(self._secret, body)[:16]).encode()

    def revoke(self, user_name: str) -> None:
        """Revoke all current and future tokens of *user_name*."""
        self._revoked.add(user_name)

    def authenticate(self, wire_token: bytes) -> User:
        """Validate a token; returns the authenticated user or raises."""
        token = Token.decode(wire_token)
        body = json.dumps(token.payload, sort_keys=True).encode()
        expected = hmac(self._secret, body)[:16]
        if token.tag != expected:
            self.auth_failures += 1
            raise SecurityError("token signature invalid")
        if token.payload.get("exp", 0) < self._now():
            self.auth_failures += 1
            raise SecurityError("token expired")
        name = token.payload.get("sub", "")
        if name in self._revoked or name not in self._users:
            self.auth_failures += 1
            raise SecurityError(f"token subject {name!r} not accepted")
        self.auth_successes += 1
        return self._users[name]

    # -- authorization ------------------------------------------------------------

    def authorize(self, user: User, permission: str) -> None:
        """Raise :class:`SecurityError` unless *user* holds *permission*."""
        if permission not in PERMISSIONS:
            raise SecurityError(f"unknown permission {permission!r}")
        if permission not in user.permissions():
            raise SecurityError(
                f"user {user.name!r} lacks permission {permission!r}"
            )
