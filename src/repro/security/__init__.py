"""Security substrate: primitives, levels, channels, auth, trust.

Implements the paper's Table II (three tiered security levels with
concrete primitives per cell) and the Security/Privacy and
Trust/Reputation building blocks of Table I. All cryptographic
primitives are implemented from scratch in :mod:`repro.security.primitives`
and verified against official test vectors where they exist (FIPS-197
for AES, FIPS-180 for SHA-2, the ASCON v1.2 KATs).
"""

from repro.security.levels import (
    Identity,
    OperationCounters,
    SecurityLevel,
    SecuritySuite,
    SUITE_DESCRIPTORS,
    SuiteDescriptor,
    negotiate_level,
)
from repro.security.channel import HandshakeTranscript, SecureChannel
from repro.security.auth import (
    AuthModule,
    BUILTIN_ROLES,
    PERMISSIONS,
    Token,
    User,
)
from repro.security.trust import (
    InteractionOutcome,
    TrustEngine,
    TrustRecord,
    aggregate_reputation,
)

__all__ = [
    "Identity",
    "OperationCounters",
    "SecurityLevel",
    "SecuritySuite",
    "SUITE_DESCRIPTORS",
    "SuiteDescriptor",
    "negotiate_level",
    "HandshakeTranscript",
    "SecureChannel",
    "AuthModule",
    "BUILTIN_ROLES",
    "PERMISSIONS",
    "Token",
    "User",
    "InteractionOutcome",
    "TrustEngine",
    "TrustRecord",
    "aggregate_reputation",
]
