"""RSA key generation, signatures and key encapsulation, from scratch.

Table II assigns RSA digital signatures and RSA key encapsulation to the
*medium* security level. Key generation uses Miller-Rabin primality
testing; signing follows the hash-then-pad scheme of PKCS#1 v1.5 (with a
simplified deterministic padding), and the KEM encrypts a random secret
under the public key (RSA-KEM, ISO 18033-2 style).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import SecurityError
from repro.security.primitives.sha2 import hkdf, sha256

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]


def is_probable_prime(n: int, rng: random.Random, rounds: int = 32) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly *bits* bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    e: int
    d: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8


def generate_keypair(bits: int = 1024,
                     rng: random.Random | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair. 1024-bit default keeps simulation fast;
    the key size is a parameter, not a protocol constant."""
    rng = rng or random.Random(0)
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        return RsaPrivateKey(n=p * q, e=e, d=d)


def _pad_digest(digest: bytes, target_len: int) -> int:
    """PKCS#1 v1.5-style padding: 0x00 0x01 FF..FF 0x00 digest."""
    if target_len < len(digest) + 11:
        raise SecurityError("RSA modulus too small for digest padding")
    padded = (b"\x00\x01" + b"\xff" * (target_len - len(digest) - 3)
              + b"\x00" + digest)
    return int.from_bytes(padded, "big")


def sign(key: RsaPrivateKey, message: bytes) -> bytes:
    """Sign SHA-256(message) with the private exponent."""
    m = _pad_digest(sha256(message), key.byte_length)
    return pow(m, key.d, key.n).to_bytes(key.byte_length, "big")


def verify(key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify an RSA signature; returns False rather than raising."""
    if len(signature) != key.byte_length:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    recovered = pow(s, key.e, key.n)
    try:
        expected = _pad_digest(sha256(message), key.byte_length)
    except SecurityError:
        return False
    return recovered == expected


def kem_encapsulate(key: RsaPublicKey,
                    rng: random.Random) -> tuple[bytes, bytes]:
    """RSA-KEM: returns (shared_secret, ciphertext).

    A random integer below n is encrypted with the public key; the shared
    secret is derived from it with HKDF.
    """
    r = rng.randrange(2, key.n - 1)
    ciphertext = pow(r, key.e, key.n).to_bytes(key.byte_length, "big")
    secret = hkdf(r.to_bytes(key.byte_length, "big"), 32,
                  info=b"rsa-kem")
    return secret, ciphertext


def kem_decapsulate(key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Recover the KEM shared secret from the ciphertext."""
    if len(ciphertext) != key.byte_length:
        raise SecurityError("RSA-KEM ciphertext has wrong length")
    c = int.from_bytes(ciphertext, "big")
    if c >= key.n:
        raise SecurityError("RSA-KEM ciphertext out of range")
    r = pow(c, key.d, key.n)
    return hkdf(r.to_bytes(key.byte_length, "big"), 32, info=b"rsa-kem")
