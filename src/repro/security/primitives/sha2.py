"""SHA-256 and SHA-512 implemented from scratch (FIPS 180-2).

Table II of the paper names SHA-256 for the medium security level and
SHA-512 for the high level. These are straightforward Merkle-Damgard
constructions; both are verified against the official NIST test vectors
in the test suite.
"""

from __future__ import annotations

import struct

_SHA256_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

_SHA256_H0 = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]

_SHA512_K = [
    0x428A2F98D728AE22, 0x7137449123EF65CD, 0xB5C0FBCFEC4D3B2F,
    0xE9B5DBA58189DBBC, 0x3956C25BF348B538, 0x59F111F1B605D019,
    0x923F82A4AF194F9B, 0xAB1C5ED5DA6D8118, 0xD807AA98A3030242,
    0x12835B0145706FBE, 0x243185BE4EE4B28C, 0x550C7DC3D5FFB4E2,
    0x72BE5D74F27B896F, 0x80DEB1FE3B1696B1, 0x9BDC06A725C71235,
    0xC19BF174CF692694, 0xE49B69C19EF14AD2, 0xEFBE4786384F25E3,
    0x0FC19DC68B8CD5B5, 0x240CA1CC77AC9C65, 0x2DE92C6F592B0275,
    0x4A7484AA6EA6E483, 0x5CB0A9DCBD41FBD4, 0x76F988DA831153B5,
    0x983E5152EE66DFAB, 0xA831C66D2DB43210, 0xB00327C898FB213F,
    0xBF597FC7BEEF0EE4, 0xC6E00BF33DA88FC2, 0xD5A79147930AA725,
    0x06CA6351E003826F, 0x142929670A0E6E70, 0x27B70A8546D22FFC,
    0x2E1B21385C26C926, 0x4D2C6DFC5AC42AED, 0x53380D139D95B3DF,
    0x650A73548BAF63DE, 0x766A0ABB3C77B2A8, 0x81C2C92E47EDAEE6,
    0x92722C851482353B, 0xA2BFE8A14CF10364, 0xA81A664BBC423001,
    0xC24B8B70D0F89791, 0xC76C51A30654BE30, 0xD192E819D6EF5218,
    0xD69906245565A910, 0xF40E35855771202A, 0x106AA07032BBD1B8,
    0x19A4C116B8D2D0C8, 0x1E376C085141AB53, 0x2748774CDF8EEB99,
    0x34B0BCB5E19B48A8, 0x391C0CB3C5C95A63, 0x4ED8AA4AE3418ACB,
    0x5B9CCA4F7763E373, 0x682E6FF3D6B2B8A3, 0x748F82EE5DEFB2FC,
    0x78A5636F43172F60, 0x84C87814A1F0AB72, 0x8CC702081A6439EC,
    0x90BEFFFA23631E28, 0xA4506CEBDE82BDE9, 0xBEF9A3F7B2C67915,
    0xC67178F2E372532B, 0xCA273ECEEA26619C, 0xD186B8C721C0C207,
    0xEADA7DD6CDE0EB1E, 0xF57D4F7FEE6ED178, 0x06F067AA72176FBA,
    0x0A637DC5A2C898A6, 0x113F9804BEF90DAE, 0x1B710B35131C471B,
    0x28DB77F523047D84, 0x32CAAB7B40C72493, 0x3C9EBE0A15C9BEBC,
    0x431D67C49C100D4C, 0x4CC5D4BECB3E42B6, 0x597F299CFC657E2A,
    0x5FCB6FAB3AD6FAEC, 0x6C44198C4A475817,
]

_SHA512_H0 = [
    0x6A09E667F3BCC908, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B,
    0xA54FF53A5F1D36F1, 0x510E527FADE682D1, 0x9B05688C2B3E6C1F,
    0x1F83D9ABFB41BD6B, 0x5BE0CD19137E2179,
]


def _rotr(x: int, n: int, width: int) -> int:
    mask = (1 << width) - 1
    return ((x >> n) | (x << (width - n))) & mask


def _sha2_compress(state: list[int], block: bytes, width: int,
                   k_table: list[int], rounds: int) -> list[int]:
    """One compression-function application (width = 32 or 64 bits)."""
    mask = (1 << width) - 1
    word_bytes = width // 8
    if width == 32:
        small = (7, 18, 3, 17, 19, 10)
        big = (2, 13, 22, 6, 11, 25)
    else:
        small = (1, 8, 7, 19, 61, 6)
        big = (28, 34, 39, 14, 18, 41)
    w = list(struct.unpack(f">{16}{'I' if width == 32 else 'Q'}", block))
    for t in range(16, rounds):
        s0 = (_rotr(w[t - 15], small[0], width)
              ^ _rotr(w[t - 15], small[1], width) ^ (w[t - 15] >> small[2]))
        s1 = (_rotr(w[t - 2], small[3], width)
              ^ _rotr(w[t - 2], small[4], width) ^ (w[t - 2] >> small[5]))
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & mask)
    a, b, c, d, e, f, g, h = state
    for t in range(rounds):
        big_s1 = (_rotr(e, big[3], width) ^ _rotr(e, big[4], width)
                  ^ _rotr(e, big[5], width))
        ch = (e & f) ^ (~e & g)
        t1 = (h + big_s1 + ch + k_table[t] + w[t]) & mask
        big_s0 = (_rotr(a, big[0], width) ^ _rotr(a, big[1], width)
                  ^ _rotr(a, big[2], width))
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (big_s0 + maj) & mask
        h, g, f, e, d, c, b, a = g, f, e, (d + t1) & mask, c, b, a, \
            (t1 + t2) & mask
    return [(s + v) & mask for s, v in zip(state, [a, b, c, d, e, f, g, h])]


def _sha2(data: bytes, width: int, h0: list[int], k_table: list[int],
          rounds: int, out_bytes: int) -> bytes:
    block_bytes = width * 2  # 64 for SHA-256, 128 for SHA-512
    length_field = block_bytes // 8  # 8 or 16 bytes of length
    bit_len = len(data) * 8
    padded = data + b"\x80"
    while (len(padded) + length_field) % block_bytes:
        padded += b"\x00"
    padded += bit_len.to_bytes(length_field, "big")
    state = list(h0)
    for offset in range(0, len(padded), block_bytes):
        state = _sha2_compress(state, padded[offset:offset + block_bytes],
                               width, k_table, rounds)
    word_bytes = width // 8
    digest = b"".join(s.to_bytes(word_bytes, "big") for s in state)
    return digest[:out_bytes]


def sha256(data: bytes) -> bytes:
    """SHA-256 digest (32 bytes) of *data*."""
    return _sha2(data, 32, _SHA256_H0, _SHA256_K, 64, 32)


def sha512(data: bytes) -> bytes:
    """SHA-512 digest (64 bytes) of *data*."""
    return _sha2(data, 64, _SHA512_H0, _SHA512_K, 80, 64)


def hmac(key: bytes, message: bytes, hash_fn=sha256,
         block_size: int | None = None) -> bytes:
    """HMAC (RFC 2104) over any of the library's hash functions."""
    if block_size is None:
        block_size = 128 if hash_fn is sha512 else 64
    if len(key) > block_size:
        key = hash_fn(key)
    key = key.ljust(block_size, b"\x00")
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    return hash_fn(o_pad + hash_fn(i_pad + message))


def hkdf(ikm: bytes, length: int, salt: bytes = b"",
         info: bytes = b"") -> bytes:
    """HKDF-SHA256 (RFC 5869) extract-and-expand key derivation."""
    prk = hmac(salt or b"\x00" * 32, ikm)
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]
