"""Lattice-based post-quantum KEM and signatures (CRYSTALS-style).

Table II assigns CRYSTALS-Kyber key encapsulation and CRYSTALS-Dilithium
/ FALCON signatures to the *high* (PQC-resistant) security level. This
module implements functional module-LWE analogues of both schemes:

* :func:`kem_*` — a Kyber-style IND-CPA KEM over R_q = Z_q[x]/(x^n + 1)
  with centered-binomial noise (without the ciphertext compression of
  the real scheme);
* :func:`sig_*` — a Dilithium-style Fiat-Shamir-with-aborts signature
  with high-bits rounding and the rejection-sampling retry loop.

Parameters are chosen so decryption/verification are correct with
overwhelming probability at simulation scale. These are *educational*
reimplementations that preserve the algorithms' structure and cost
shape — not hardened production cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SecurityError
from repro.security.primitives.sha2 import sha256

# -- ring arithmetic -----------------------------------------------------------

KEM_N = 256
KEM_Q = 3329
KEM_K = 2
KEM_ETA = 2

SIG_N = 256
SIG_Q = 8380417
SIG_K = 2
SIG_ETA = 2
SIG_TAU = 39  # weight of the challenge polynomial
SIG_GAMMA = 1 << 17  # masking range for y
SIG_ALPHA = 1 << 19  # high-bits rounding granularity
SIG_BETA = SIG_TAU * SIG_ETA  # max |c*s| coefficient


def _poly_mul(a: np.ndarray, b: np.ndarray, q: int, n: int) -> np.ndarray:
    """Multiply two polynomials in Z_q[x]/(x^n + 1)."""
    full = np.convolve(a.astype(np.int64), b.astype(np.int64))
    folded = full[:n].copy()
    folded[: len(full) - n] -= full[n:]
    return np.mod(folded, q)


def _matvec(matrix: np.ndarray, vector: np.ndarray, q: int,
            n: int) -> np.ndarray:
    """Multiply a k x k matrix of ring elements by a k-vector."""
    k = matrix.shape[0]
    out = np.zeros((k, n), dtype=np.int64)
    for i in range(k):
        for j in range(k):
            out[i] = np.mod(out[i] + _poly_mul(matrix[i, j], vector[j], q, n),
                            q)
    return out


def _dot(a: np.ndarray, b: np.ndarray, q: int, n: int) -> np.ndarray:
    """Inner product of two vectors of ring elements."""
    out = np.zeros(n, dtype=np.int64)
    for i in range(a.shape[0]):
        out = np.mod(out + _poly_mul(a[i], b[i], q, n), q)
    return out


def _cbd(rng: np.random.Generator, eta: int, shape) -> np.ndarray:
    """Centered binomial distribution with parameter eta."""
    a = rng.integers(0, 2, size=(*shape, eta)).sum(axis=-1)
    b = rng.integers(0, 2, size=(*shape, eta)).sum(axis=-1)
    return (a - b).astype(np.int64)


def _uniform_matrix(seed: bytes, k: int, q: int, n: int) -> np.ndarray:
    """Expand a public seed into a uniform k x k matrix of ring elements."""
    rng = np.random.default_rng(
        int.from_bytes(sha256(seed)[:8], "big"))
    return rng.integers(0, q, size=(k, k, n), dtype=np.int64)


def _centered(x: np.ndarray, q: int) -> np.ndarray:
    """Map residues to the centered range (-q/2, q/2]."""
    return np.where(x > q // 2, x - q, x)


# -- Kyber-style KEM --------------------------------------------------------------


@dataclass
class KemPublicKey:
    seed: bytes
    t: np.ndarray  # k x n

    def encode(self) -> bytes:
        """Wire encoding: seed || packed t (12 bits/coeff rounded to 2B)."""
        return self.seed + self.t.astype(np.uint16).tobytes()


@dataclass
class KemPrivateKey:
    s: np.ndarray
    public: KemPublicKey


def kem_generate_keypair(rng: np.random.Generator) -> KemPrivateKey:
    """Generate a module-LWE keypair: t = A s + e."""
    seed = rng.bytes(32)
    a = _uniform_matrix(seed, KEM_K, KEM_Q, KEM_N)
    s = _cbd(rng, KEM_ETA, (KEM_K, KEM_N))
    e = _cbd(rng, KEM_ETA, (KEM_K, KEM_N))
    t = np.mod(_matvec(a, s, KEM_Q, KEM_N) + e, KEM_Q)
    return KemPrivateKey(s=s, public=KemPublicKey(seed=seed, t=t))


def kem_encapsulate(public: KemPublicKey,
                    rng: np.random.Generator) -> tuple[bytes, bytes]:
    """Encapsulate: returns (32-byte shared secret, ciphertext bytes)."""
    a = _uniform_matrix(public.seed, KEM_K, KEM_Q, KEM_N)
    m_bits = rng.integers(0, 2, size=KEM_N, dtype=np.int64)
    r = _cbd(rng, KEM_ETA, (KEM_K, KEM_N))
    e1 = _cbd(rng, KEM_ETA, (KEM_K, KEM_N))
    e2 = _cbd(rng, KEM_ETA, (KEM_N,))
    # u = A^T r + e1 ; v = t.r + e2 + round(q/2) m
    at = a.transpose(1, 0, 2)
    u = np.mod(_matvec(at, r, KEM_Q, KEM_N) + e1, KEM_Q)
    v = np.mod(_dot(public.t, r, KEM_Q, KEM_N) + e2
               + (KEM_Q // 2 + 1) * m_bits, KEM_Q)
    ciphertext = (u.astype(np.uint16).tobytes()
                  + v.astype(np.uint16).tobytes())
    secret = sha256(np.packbits(m_bits.astype(np.uint8)).tobytes())
    return secret, ciphertext


def kem_decapsulate(private: KemPrivateKey, ciphertext: bytes) -> bytes:
    """Recover the shared secret from a ciphertext."""
    u_len = KEM_K * KEM_N * 2
    expected = u_len + KEM_N * 2
    if len(ciphertext) != expected:
        raise SecurityError(
            f"KEM ciphertext must be {expected} bytes, got {len(ciphertext)}"
        )
    u = np.frombuffer(ciphertext[:u_len], dtype=np.uint16).astype(
        np.int64).reshape(KEM_K, KEM_N)
    v = np.frombuffer(ciphertext[u_len:], dtype=np.uint16).astype(np.int64)
    noisy = np.mod(v - _dot(private.s, u, KEM_Q, KEM_N), KEM_Q)
    centered = _centered(noisy, KEM_Q)
    m_bits = (np.abs(centered) > KEM_Q // 4).astype(np.uint8)
    return sha256(np.packbits(m_bits).tobytes())


def kem_ciphertext_bytes() -> int:
    """Size of a KEM ciphertext on the wire."""
    return KEM_K * KEM_N * 2 + KEM_N * 2


# -- Dilithium-style signature ---------------------------------------------------------


@dataclass
class SigPublicKey:
    seed: bytes
    t: np.ndarray

    def encode(self) -> bytes:
        return self.seed + self.t.astype(np.int64).tobytes()


@dataclass
class SigPrivateKey:
    s1: np.ndarray
    s2: np.ndarray
    public: SigPublicKey


def sig_generate_keypair(rng: np.random.Generator) -> SigPrivateKey:
    """Generate a signing keypair: t = A s1 + s2."""
    seed = rng.bytes(32)
    a = _uniform_matrix(seed, SIG_K, SIG_Q, SIG_N)
    s1 = _cbd(rng, SIG_ETA, (SIG_K, SIG_N))
    s2 = _cbd(rng, SIG_ETA, (SIG_K, SIG_N))
    t = np.mod(_matvec(a, s1, SIG_Q, SIG_N) + s2, SIG_Q)
    return SigPrivateKey(s1=s1, s2=s2, public=SigPublicKey(seed=seed, t=t))


def _high_bits(w: np.ndarray) -> np.ndarray:
    """Round each coefficient to its high-order part."""
    return ((w + SIG_ALPHA // 2) // SIG_ALPHA) % (SIG_Q // SIG_ALPHA + 1)


def _challenge(high: np.ndarray, message: bytes) -> np.ndarray:
    """Hash high bits + message into a sparse tau-weight {-1,0,1} poly."""
    digest = sha256(high.astype(np.int64).tobytes() + message)
    rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
    c = np.zeros(SIG_N, dtype=np.int64)
    positions = rng.choice(SIG_N, size=SIG_TAU, replace=False)
    signs = rng.integers(0, 2, size=SIG_TAU) * 2 - 1
    c[positions] = signs
    return c


def sig_sign(private: SigPrivateKey, message: bytes,
             rng: np.random.Generator,
             max_attempts: int = 100) -> tuple[np.ndarray, np.ndarray]:
    """Sign with Fiat-Shamir-with-aborts; returns (c, z)."""
    a = _uniform_matrix(private.public.seed, SIG_K, SIG_Q, SIG_N)
    for _ in range(max_attempts):
        y = rng.integers(-SIG_GAMMA, SIG_GAMMA + 1,
                         size=(SIG_K, SIG_N), dtype=np.int64)
        w = np.mod(_matvec(a, np.mod(y, SIG_Q), SIG_Q, SIG_N), SIG_Q)
        high_w = _high_bits(w)
        c = _challenge(high_w, message)
        z = y + np.stack([
            _centered(_poly_mul(c, private.s1[i], SIG_Q, SIG_N), SIG_Q)
            for i in range(SIG_K)
        ])
        # Rejection sampling: bound z and require identical high bits
        # after subtracting c*s2 (the verifier-side reconstruction).
        if np.abs(z).max() >= SIG_GAMMA - SIG_BETA:
            continue
        w_prime = np.mod(w - np.stack([
            _poly_mul(c, private.s2[i], SIG_Q, SIG_N)
            for i in range(SIG_K)
        ]), SIG_Q)
        if np.array_equal(_high_bits(w_prime), high_w):
            return c, z
    raise SecurityError("signature rejection sampling did not converge")


def sig_verify(public: SigPublicKey, message: bytes,
               signature: tuple[np.ndarray, np.ndarray]) -> bool:
    """Verify a (c, z) signature; returns False on any failure."""
    c, z = signature
    if z.shape != (SIG_K, SIG_N) or np.abs(z).max() >= SIG_GAMMA - SIG_BETA:
        return False
    a = _uniform_matrix(public.seed, SIG_K, SIG_Q, SIG_N)
    az = _matvec(a, np.mod(z, SIG_Q), SIG_Q, SIG_N)
    ct = np.stack([
        _poly_mul(c, public.t[i], SIG_Q, SIG_N) for i in range(SIG_K)
    ])
    w_prime = np.mod(az - ct, SIG_Q)
    expected_c = _challenge(_high_bits(w_prime), message)
    return np.array_equal(c, expected_c)


def sig_signature_bytes() -> int:
    """Approximate wire size of a signature (c packed + z at 18b/coeff)."""
    c_bytes = SIG_TAU * 2  # position + sign per nonzero coefficient
    z_bytes = SIG_K * SIG_N * 18 // 8
    return c_bytes + z_bytes
