"""AES-128 / AES-256 implemented from scratch (FIPS 197), with CTR mode.

Table II selects AES-256 for the high security level and AES-128 for the
medium level. The block cipher is verified against the FIPS-197 appendix
vectors in the test suite; CTR mode plus an HMAC tag (encrypt-then-MAC)
provides the authenticated-encryption interface used by secure channels.
"""

from __future__ import annotations

from repro.core.errors import SecurityError
from repro.security.primitives.sha2 import hmac

_SBOX: list[int] = []
_INV_SBOX: list[int] = []


def _build_sboxes() -> None:
    """Compute the AES S-box from GF(2^8) inversion + affine transform."""
    if _SBOX:
        return
    # Multiplicative inverses via exp/log tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    inv = [0] + [exp[255 - log[i]] for i in range(1, 256)]
    sbox = [0] * 256
    for i in range(256):
        b = inv[i]
        s = b
        for _ in range(4):
            b = ((b << 1) | (b >> 7)) & 0xFF
            s ^= b
        sbox[i] = s ^ 0x63
    _SBOX.extend(sbox)
    _INV_SBOX.extend([0] * 256)
    for i, v in enumerate(sbox):
        _INV_SBOX[v] = i


_build_sboxes()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """The AES block cipher for 128- or 256-bit keys."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 32):
            raise SecurityError("AES key must be 16 or 32 bytes")
        self.key = key
        self.nk = len(key) // 4
        self.nr = {4: 10, 8: 14}[self.nk]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk, nr = self.nk, self.nr
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        return words

    def _add_round_key(self, state: list[int], rnd: int) -> None:
        for c in range(4):
            word = self._round_keys[4 * rnd + c]
            for r in range(4):
                state[4 * c + r] ^= word[r]

    @staticmethod
    def _sub_bytes(state: list[int], box: list[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int], inverse: bool = False) -> None:
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            shift = -r if inverse else r
            row = row[shift % 4:] + row[:shift % 4]
            for c in range(4):
                state[4 * c + r] = row[c]

    @staticmethod
    def _mix_columns(state: list[int], inverse: bool = False) -> None:
        coeffs = (14, 11, 13, 9) if inverse else (2, 3, 1, 1)
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            state[4 * c + 0] = (_gmul(col[0], coeffs[0])
                                ^ _gmul(col[1], coeffs[1])
                                ^ _gmul(col[2], coeffs[2])
                                ^ _gmul(col[3], coeffs[3]))
            state[4 * c + 1] = (_gmul(col[0], coeffs[3])
                                ^ _gmul(col[1], coeffs[0])
                                ^ _gmul(col[2], coeffs[1])
                                ^ _gmul(col[3], coeffs[2]))
            state[4 * c + 2] = (_gmul(col[0], coeffs[2])
                                ^ _gmul(col[1], coeffs[3])
                                ^ _gmul(col[2], coeffs[0])
                                ^ _gmul(col[3], coeffs[1]))
            state[4 * c + 3] = (_gmul(col[0], coeffs[1])
                                ^ _gmul(col[1], coeffs[2])
                                ^ _gmul(col[2], coeffs[3])
                                ^ _gmul(col[3], coeffs[0]))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise SecurityError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, 0)
        for rnd in range(1, self.nr):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, rnd)
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self.nr)
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise SecurityError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self.nr)
        for rnd in range(self.nr - 1, 0, -1):
            self._shift_rows(state, inverse=True)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, rnd)
            self._mix_columns(state, inverse=True)
        self._shift_rows(state, inverse=True)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, 0)
        return bytes(state)


def aes_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-CTR keystream XOR (encryption and decryption are identical)."""
    if len(nonce) != 12:
        raise SecurityError("CTR nonce must be 12 bytes")
    cipher = AES(key)
    out = bytearray()
    for counter in range((len(data) + 15) // 16):
        block = cipher.encrypt_block(nonce + counter.to_bytes(4, "big"))
        chunk = data[16 * counter:16 * counter + 16]
        out.extend(b ^ k for b, k in zip(chunk, block))
    return bytes(out)


def aes_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                associated_data: bytes = b"") -> bytes:
    """Encrypt-then-MAC authenticated encryption (AES-CTR + HMAC-SHA256).

    Returns ciphertext || 16-byte tag.
    """
    ciphertext = aes_ctr(key, nonce, plaintext)
    tag = hmac(key, nonce + associated_data + ciphertext)[:16]
    return ciphertext + tag


def aes_decrypt(key: bytes, nonce: bytes, sealed: bytes,
                associated_data: bytes = b"") -> bytes:
    """Verify the tag and decrypt; raises :class:`SecurityError` on tamper."""
    if len(sealed) < 16:
        raise SecurityError("ciphertext too short to carry a tag")
    ciphertext, tag = sealed[:-16], sealed[-16:]
    expected = hmac(key, nonce + associated_data + ciphertext)[:16]
    if not _constant_time_eq(tag, expected):
        raise SecurityError("AEAD tag verification failed")
    return aes_ctr(key, nonce, ciphertext)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
