"""ASCON-128 AEAD and ASCON-Hash implemented from scratch.

Table II selects ASCON-128 encryption and ASCON-Hash for the *low*
(lightweight, non-PQC) security level targeting constrained edge
components such as the RISC-V+CGRA devices. The 320-bit permutation
follows the ASCON v1.2 specification (NIST Lightweight Cryptography
winner): round constants, the 5-bit S-box in bitsliced form, and the
per-word linear diffusion rotations.
"""

from __future__ import annotations

from repro.core.errors import SecurityError

_MASK64 = (1 << 64) - 1
_ROUND_CONSTANTS = [0xF0, 0xE1, 0xD2, 0xC3, 0xB4, 0xA5, 0x96, 0x87,
                    0x78, 0x69, 0x5A, 0x4B]


def _rotr64(x: int, n: int) -> int:
    return ((x >> n) | (x << (64 - n))) & _MASK64


def permutation(state: list[int], rounds: int) -> list[int]:
    """The ASCON permutation p^rounds over five 64-bit words."""
    x0, x1, x2, x3, x4 = state
    for rc in _ROUND_CONSTANTS[12 - rounds:]:
        # Round-constant addition.
        x2 ^= rc
        # Substitution layer (bitsliced 5-bit S-box).
        x0 ^= x4
        x4 ^= x3
        x2 ^= x1
        t0 = (~x0) & x1
        t1 = (~x1) & x2
        t2 = (~x2) & x3
        t3 = (~x3) & x4
        t4 = (~x4) & x0
        x0 ^= t1
        x1 ^= t2
        x2 ^= t3
        x3 ^= t4
        x4 ^= t0
        x1 ^= x0
        x0 ^= x4
        x3 ^= x2
        x2 = (~x2) & _MASK64
        # Linear diffusion layer.
        x0 ^= _rotr64(x0, 19) ^ _rotr64(x0, 28)
        x1 ^= _rotr64(x1, 61) ^ _rotr64(x1, 39)
        x2 ^= _rotr64(x2, 1) ^ _rotr64(x2, 6)
        x3 ^= _rotr64(x3, 10) ^ _rotr64(x3, 17)
        x4 ^= _rotr64(x4, 7) ^ _rotr64(x4, 41)
        x0 &= _MASK64
        x1 &= _MASK64
        x3 &= _MASK64
        x4 &= _MASK64
    return [x0, x1, x2, x3, x4]


_IV_AEAD = 0x80400C0600000000  # Ascon-128: k=128, r=64, a=12, b=6
_IV_HASH = 0x00400C0000000100  # Ascon-Hash: r=64, a=12, 256-bit digest


def _bytes_to_word(data: bytes) -> int:
    return int.from_bytes(data.ljust(8, b"\x00"), "big")


def _pad(data: bytes, rate: int = 8) -> bytes:
    """10* padding to a multiple of the rate."""
    pad_len = rate - (len(data) % rate)
    return data + b"\x80" + b"\x00" * (pad_len - 1)


def ascon128_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                     associated_data: bytes = b"") -> bytes:
    """ASCON-128 authenticated encryption; returns ciphertext || 16B tag."""
    if len(key) != 16:
        raise SecurityError("ASCON-128 key must be 16 bytes")
    if len(nonce) != 16:
        raise SecurityError("ASCON-128 nonce must be 16 bytes")
    k0, k1 = _bytes_to_word(key[:8]), _bytes_to_word(key[8:])
    n0, n1 = _bytes_to_word(nonce[:8]), _bytes_to_word(nonce[8:])
    state = permutation([_IV_AEAD, k0, k1, n0, n1], 12)
    state[3] ^= k0
    state[4] ^= k1
    # Associated data.
    if associated_data:
        for i in range(0, len(_pad(associated_data)), 8):
            state[0] ^= _bytes_to_word(_pad(associated_data)[i:i + 8])
            state = permutation(state, 6)
    state[4] ^= 1  # domain separation
    # Plaintext absorption / ciphertext squeeze.
    padded = _pad(plaintext)
    ciphertext = bytearray()
    for i in range(0, len(padded), 8):
        state[0] ^= _bytes_to_word(padded[i:i + 8])
        block_len = min(8, len(plaintext) - i)
        if block_len > 0:
            ciphertext.extend(state[0].to_bytes(8, "big")[:block_len])
        if i + 8 < len(padded):
            state = permutation(state, 6)
    # Finalization.
    state[1] ^= k0
    state[2] ^= k1
    state = permutation(state, 12)
    tag = ((state[3] ^ k0).to_bytes(8, "big")
           + (state[4] ^ k1).to_bytes(8, "big"))
    return bytes(ciphertext) + tag


def ascon128_decrypt(key: bytes, nonce: bytes, sealed: bytes,
                     associated_data: bytes = b"") -> bytes:
    """ASCON-128 verified decryption; raises on tag mismatch."""
    if len(sealed) < 16:
        raise SecurityError("ciphertext too short to carry a tag")
    ciphertext, tag = sealed[:-16], sealed[-16:]
    k0, k1 = _bytes_to_word(key[:8]), _bytes_to_word(key[8:])
    n0, n1 = _bytes_to_word(nonce[:8]), _bytes_to_word(nonce[8:])
    state = permutation([_IV_AEAD, k0, k1, n0, n1], 12)
    state[3] ^= k0
    state[4] ^= k1
    if associated_data:
        for i in range(0, len(_pad(associated_data)), 8):
            state[0] ^= _bytes_to_word(_pad(associated_data)[i:i + 8])
            state = permutation(state, 6)
    state[4] ^= 1
    plaintext = bytearray()
    n_blocks = len(ciphertext) // 8
    for i in range(n_blocks):
        c_word = _bytes_to_word(ciphertext[8 * i:8 * i + 8])
        plaintext.extend((state[0] ^ c_word).to_bytes(8, "big"))
        state[0] = c_word
        state = permutation(state, 6)
    # Final partial block.
    remainder = ciphertext[8 * n_blocks:]
    r = len(remainder)
    s_bytes = state[0].to_bytes(8, "big")
    plaintext.extend(bytes(c ^ s for c, s in zip(remainder, s_bytes)))
    partial = bytes(plaintext[8 * n_blocks:]) + b"\x80"
    state[0] ^= _bytes_to_word(partial)
    state[1] ^= k0
    state[2] ^= k1
    state = permutation(state, 12)
    expected = ((state[3] ^ k0).to_bytes(8, "big")
                + (state[4] ^ k1).to_bytes(8, "big"))
    if not _constant_time_eq(tag, expected):
        raise SecurityError("ASCON tag verification failed")
    return bytes(plaintext)


def ascon_hash(data: bytes, out_bytes: int = 32) -> bytes:
    """ASCON-Hash: sponge over the 12-round permutation, rate 8 bytes."""
    state = permutation([_IV_HASH, 0, 0, 0, 0], 12)
    padded = _pad(data)
    for i in range(0, len(padded), 8):
        state[0] ^= _bytes_to_word(padded[i:i + 8])
        state = permutation(state, 12)
    digest = bytearray()
    while len(digest) < out_bytes:
        digest.extend(state[0].to_bytes(8, "big"))
        if len(digest) < out_bytes:
            state = permutation(state, 12)
    return bytes(digest[:out_bytes])


def lightweight_sponge_hash(data: bytes, out_bytes: int = 20,
                            rounds: int = 8) -> bytes:
    """A QUARK/spongent/PHOTON-style lightweight sponge hash.

    Table II also lists QUARK, spongent and PHOTON as lightweight hashing
    examples; this models their design point — a small-state sponge with a
    reduced-round permutation and short digest — reusing the ASCON
    permutation as the underlying P.
    """
    state = permutation([0x4C49474854, 0, 0, 0, 0], 12)
    padded = _pad(data, 4)
    for i in range(0, len(padded), 4):
        state[0] ^= _bytes_to_word(padded[i:i + 4])
        state = permutation(state, rounds)
    digest = bytearray()
    while len(digest) < out_bytes:
        digest.extend(state[0].to_bytes(8, "big")[:4])
        state = permutation(state, rounds)
    return bytes(digest[:out_bytes])


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
