"""ECDSA and ECDH over NIST P-256, implemented from scratch.

Table II assigns ECDSA signatures to both the medium and low levels and
uses elliptic-curve key agreement for the low-level key exchange. The
curve arithmetic uses Jacobian-free affine formulas with modular
inversion via Fermat's little theorem — slow but simple and correct.
Signing is deterministic (RFC 6979-style nonce derivation via HMAC) so
the implementation needs no secure RNG at signing time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SecurityError
from repro.security.primitives.sha2 import hmac, sha256

# NIST P-256 domain parameters.
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


Point = tuple[int, int] | None  # None is the point at infinity


def is_on_curve(point: Point) -> bool:
    """Check the curve equation y^2 = x^3 + ax + b (mod p)."""
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + A * x + B)) % P == 0


def point_add(p1: Point, p2: Point) -> Point:
    """Affine point addition on P-256."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2 and (y1 + y2) % P == 0:
        return None
    if p1 == p2:
        slope = (3 * x1 * x1 + A) * pow(2 * y1, P - 2, P) % P
    else:
        slope = (y2 - y1) * pow(x2 - x1, P - 2, P) % P
    x3 = (slope * slope - x1 - x2) % P
    y3 = (slope * (x1 - x3) - y1) % P
    return (x3, y3)


def scalar_mult(k: int, point: Point) -> Point:
    """Double-and-add scalar multiplication."""
    k %= N
    result: Point = None
    addend = point
    while k:
        if k & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        k >>= 1
    return result


@dataclass(frozen=True)
class EcdsaKeyPair:
    """Private scalar d and public point Q = d*G."""

    d: int
    q: tuple[int, int]

    @property
    def public_bytes(self) -> bytes:
        """Uncompressed SEC1 encoding of the public point."""
        return b"\x04" + self.q[0].to_bytes(32, "big") \
            + self.q[1].to_bytes(32, "big")


def generate_keypair(rng) -> EcdsaKeyPair:
    """Generate a P-256 keypair from the supplied random stream."""
    d = rng.randrange(1, N)
    q = scalar_mult(d, (GX, GY))
    assert q is not None
    return EcdsaKeyPair(d=d, q=q)


def public_key_from_bytes(data: bytes) -> tuple[int, int]:
    """Decode an uncompressed SEC1 public key, validating the point."""
    if len(data) != 65 or data[0] != 4:
        raise SecurityError("malformed P-256 public key")
    q = (int.from_bytes(data[1:33], "big"), int.from_bytes(data[33:], "big"))
    if not is_on_curve(q) or q is None:
        raise SecurityError("public key not on curve")
    return q


def _deterministic_nonce(d: int, digest: bytes) -> int:
    """RFC 6979-style deterministic nonce via HMAC-SHA256 counter mode."""
    seed = d.to_bytes(32, "big") + digest
    counter = 0
    while True:
        k = int.from_bytes(
            hmac(seed, counter.to_bytes(4, "big")), "big") % N
        if k != 0:
            return k
        counter += 1


def sign(key: EcdsaKeyPair, message: bytes) -> tuple[int, int]:
    """ECDSA signature (r, s) over SHA-256(message)."""
    digest = sha256(message)
    z = int.from_bytes(digest, "big") % N
    k = _deterministic_nonce(key.d, digest)
    while True:
        point = scalar_mult(k, (GX, GY))
        assert point is not None
        r = point[0] % N
        if r == 0:
            k = (k + 1) % N or 1
            continue
        s = pow(k, N - 2, N) * (z + r * key.d) % N
        if s == 0:
            k = (k + 1) % N or 1
            continue
        return (r, s)


def verify(public: tuple[int, int], message: bytes,
           signature: tuple[int, int]) -> bool:
    """Verify an ECDSA signature; returns False on any failure."""
    r, s = signature
    if not (1 <= r < N and 1 <= s < N):
        return False
    if not is_on_curve(public):
        return False
    z = int.from_bytes(sha256(message), "big") % N
    w = pow(s, N - 2, N)
    u1 = z * w % N
    u2 = r * w % N
    point = point_add(scalar_mult(u1, (GX, GY)), scalar_mult(u2, public))
    if point is None:
        return False
    return point[0] % N == r


def ecdh_shared_secret(private_d: int, peer_public: tuple[int, int]) -> bytes:
    """ECDH: hash of the shared point's x-coordinate."""
    if not is_on_curve(peer_public):
        raise SecurityError("peer public key not on curve")
    point = scalar_mult(private_d, peer_public)
    if point is None:
        raise SecurityError("ECDH produced the point at infinity")
    return sha256(point[0].to_bytes(32, "big"))
