"""Trust and reputation engine (Table I, Trust and Reputation block).

The paper commits to "trust-related KPIs to implement trust and
reputation schemes at runtime" in a federated setting. This module keeps
a per-component trust score from direct interaction outcomes (EWMA with
time decay towards a neutral prior) and a federation-level reputation
that aggregates peer reports weighted by the reporters' own trust —
the classic defence against badmouthing by low-trust reporters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class InteractionOutcome:
    """One observed interaction with a component."""

    time_s: float
    success: bool
    kpi_adherence: float = 1.0  # 1.0 = met all KPIs, 0.0 = missed all

    def score(self) -> float:
        """Blend success and KPI adherence into a [0, 1] outcome score."""
        base = 1.0 if self.success else 0.0
        return 0.6 * base + 0.4 * max(0.0, min(1.0, self.kpi_adherence))


@dataclass
class TrustRecord:
    """Trust state for one component as seen by one observer."""

    component: str
    score: float = 0.5  # neutral prior
    observations: int = 0
    last_update_s: float = 0.0


class TrustEngine:
    """Direct-trust tracking plus reputation aggregation.

    Parameters
    ----------
    alpha:
        EWMA learning rate for new observations.
    half_life_s:
        With no observations, scores decay towards the neutral prior 0.5
        with this half-life (stale trust should not persist).
    """

    def __init__(self, observer: str, alpha: float = 0.2,
                 half_life_s: float = 3600.0, now_fn=None):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if half_life_s <= 0:
            raise ValueError("half life must be positive")
        self.observer = observer
        self.alpha = alpha
        self.half_life_s = half_life_s
        self._now = now_fn or (lambda: 0.0)
        self._records: dict[str, TrustRecord] = {}

    def _record(self, component: str) -> TrustRecord:
        if component not in self._records:
            self._records[component] = TrustRecord(component=component,
                                                   last_update_s=self._now())
        return self._records[component]

    def _decayed_score(self, record: TrustRecord) -> float:
        elapsed = max(0.0, self._now() - record.last_update_s)
        decay = 0.5 ** (elapsed / self.half_life_s)
        return 0.5 + (record.score - 0.5) * decay

    def observe(self, component: str, outcome: InteractionOutcome) -> float:
        """Fold one interaction outcome into the component's trust."""
        record = self._record(component)
        current = self._decayed_score(record)
        record.score = (1 - self.alpha) * current \
            + self.alpha * outcome.score()
        record.observations += 1
        record.last_update_s = self._now()
        return record.score

    def trust(self, component: str) -> float:
        """Current (decay-adjusted) trust in *component*; 0.5 if unknown."""
        if component not in self._records:
            return 0.5
        return self._decayed_score(self._records[component])

    def trustworthy(self, component: str, threshold: float = 0.6) -> bool:
        """Placement-eligibility predicate used by the MIRTO Manager."""
        return self.trust(component) >= threshold

    def known_components(self) -> list[str]:
        """Components with at least one direct observation."""
        return sorted(self._records)


def aggregate_reputation(reports: dict[str, tuple[float, float]]) -> float:
    """Federated reputation from peer reports.

    *reports* maps reporter name to ``(reporter_trust, reported_score)``.
    Each report is weighted by the reporter's own trust, so badmouthing
    from distrusted reporters has little effect. Returns 0.5 when no
    reports carry weight.
    """
    weight_sum = 0.0
    value_sum = 0.0
    for reporter_trust, reported_score in reports.values():
        weight = max(0.0, reporter_trust)
        weight_sum += weight
        value_sum += weight * max(0.0, min(1.0, reported_score))
    if weight_sum == 0:
        return 0.5
    return value_sum / weight_sum
